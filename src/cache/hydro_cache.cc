#include "cache/hydro_cache.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "sim/future.h"

namespace faastcc::cache {

HydroCache::HydroCache(net::Network& network, net::Address self,
                       storage::EvTopology topology, Rng rng,
                       HydroCacheParams params, Metrics* metrics,
                       obs::Tracer* tracer)
    : rpc_(network, self),
      storage_(rpc_, std::move(topology), rng, tracer),
      params_(params),
      metrics_(metrics),
      tracer_(tracer) {
  rpc_.handle(kHydroRead, [this](Buffer b, net::Address from) {
    return on_read(std::move(b), from);
  });
  rpc_.handle_oneway(storage::kEvPush, [this](Buffer b, net::Address from) {
    on_push(std::move(b), from);
  });
}

void HydroCache::on_push(Buffer msg, net::Address) {
  auto push = decode_message<storage::EvGossipMsg>(msg);
  rpc_.recycle(std::move(msg));
  for (storage::EvItem& item : push.items) {
    auto it = entries_.find(item.key);
    if (it == entries_.end()) continue;  // evicted; unsubscribe in flight
    if (item.version.counter <= it->second.counter) continue;
    HydroStored stored = decode_message<HydroStored>(
        Buffer(item.payload.begin(), item.payload.end()));
    bytes_ -= it->second.footprint();
    it->second = Entry{std::move(stored.value), item.version.counter,
                       item.written_at, std::move(stored.deps)};
    bytes_ += it->second.footprint();
    insert_stubs(it->second.deps);
    counters_.pushes_applied.inc();
  }
}

bool HydroCache::ctx_lookup(const DepMap& base, const DepMap& delta, Key k,
                            Dep& out) {
  if (delta.lookup(k, out)) return true;
  return base.lookup(k, out);
}

HydroCache::Fit HydroCache::check(const DepMap& base, const DepMap& delta,
                                  Key key, uint64_t counter,
                                  const DepList& deps) {
  // lookup() keeps the shipped context in its raw wire form: the handful
  // of probes below must not force parsing a 10^3-entry map.
  Dep need;
  if (ctx_lookup(base, delta, key, need)) {
    // HydroCache only requires a version "equal or greater" than the one
    // in the dependency list (§2); newer is acceptable, and its own
    // dependencies are validated below.
    if (counter < need.counter) return Fit::kTooOld;
  }
  for (const StoredDep& d : deps) {
    Dep have;
    if (ctx_lookup(base, delta, d.key, have) && have.read &&
        have.counter < d.counter) {
      // This version causally requires a newer version of a key the
      // transaction has already read: it is "too new" and the LWW store
      // cannot serve anything older.
      return Fit::kConflict;
    }
  }
  return Fit::kOk;
}

void HydroCache::prewarm(Key k, Value value, uint64_t counter,
                         SimTime written_at) {
  if (params_.capacity == 0 || entries_.size() >= params_.capacity) return;
  if (entries_.count(k) != 0) return;
  Entry e{std::move(value), counter, written_at, {}};
  bytes_ += e.footprint();
  entries_.emplace(k, std::move(e));
  lru_.touch(k);
}

void HydroCache::insert_entry(Key k, Entry e) {
  if (params_.capacity == 0) return;
  insert_stubs(e.deps);
  // A full entry supersedes a stub.
  if (auto st = stubs_.find(k); st != stubs_.end()) {
    stubs_.erase(st);
    stub_lru_.erase(k);
    bytes_ -= kStubBytes;
  }
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    bytes_ += e.footprint();
    entries_.emplace(k, std::move(e));
    sim::spawn(storage_.subscribe({k}));
  } else {
    if (e.counter <= it->second.counter) {
      lru_.touch(k);
      return;
    }
    bytes_ -= it->second.footprint();
    bytes_ += e.footprint();
    it->second = std::move(e);
  }
  lru_.touch(k);
  evict_to_capacity();
}

void HydroCache::insert_stubs(const DepList& deps) {
  if (params_.capacity == 0) return;
  const size_t stub_cap =
      params_.capacity == SIZE_MAX ? SIZE_MAX : params_.capacity * 4;
  for (const StoredDep& d : deps) {
    if (entries_.count(d.key) != 0) continue;
    auto [it, inserted] = stubs_.emplace(d.key, Stub{d.counter, d.written_at});
    if (inserted) {
      bytes_ += kStubBytes;
    } else if (d.counter > it->second.counter) {
      it->second = Stub{d.counter, d.written_at};
    }
    stub_lru_.touch(d.key);
    while (stubs_.size() > stub_cap) {
      auto victim = stub_lru_.least_recent();
      assert(victim.has_value());
      stubs_.erase(*victim);
      stub_lru_.erase(*victim);
      bytes_ -= kStubBytes;
    }
  }
}

void HydroCache::evict_to_capacity() {
  std::vector<Key> evicted;
  while (entries_.size() > params_.capacity) {
    auto victim = lru_.least_recent();
    assert(victim.has_value());
    auto it = entries_.find(*victim);
    bytes_ -= it->second.footprint();
    entries_.erase(it);
    lru_.erase(*victim);
    evicted.push_back(*victim);
    counters_.evictions.inc();
  }
  if (!evicted.empty()) sim::spawn(storage_.unsubscribe(std::move(evicted)));
}

sim::Task<Buffer> HydroCache::on_read(Buffer req, net::Address) {
  // Valid only before the first co_await below.
  const obs::TraceContext inbound = rpc_.inbound_trace();
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(inbound, "cache.read", "cache", rpc_.address(),
                          rpc_.now());
    span_ctx = tracer_->context_of(span);
  }
  // Shared-ownership decode: q.context aliases the records inside the
  // request buffer instead of copying them out (the buffer lives as long
  // as the context view does, so it is surrendered rather than recycled).
  auto q = decode_message<HydroReadReq>(
      std::make_shared<const Buffer>(std::move(req)));
  counters_.requests.inc();
  if (metrics_ != nullptr) metrics_->cache_lookups.inc();
  co_await sim::sleep_for(rpc_.loop(), params_.lookup_cpu);

  HydroReadResp resp;
  resp.entries.resize(q.keys.size());
  resp.from_cache.assign(q.keys.size(), false);

  // The shipped context stays in its raw wire form for the whole request
  // (it is probed a handful of times, never shipped back).  This request's
  // own updates go into a small overlay, seeded with the base entry before
  // the first update of a key so overlay entries carry the combined state.
  const DepMap ctx = std::move(q.context);
  DepMap delta;
  bool storage_contacted = false;
  double episode_rounds = 0;
  size_t episode_bytes = 0;

  auto seed = [&](Key k) {
    if (delta.find(k) != nullptr) return;
    Dep b;
    if (ctx.lookup(k, b)) {
      if (b.read) {
        delta.mark_read(k, b.counter, b.written_at);
      } else {
        delta.require(k, b.counter, b.written_at, b.level);
      }
    }
  };
  auto accept = [&](size_t i, Key k, const Value& value, uint64_t counter,
                    SimTime written_at, const DepList& deps) {
    HydroReadEntry& out = resp.entries[i];
    out.key = k;
    out.value = value;
    out.counter = counter;
    out.written_at = written_at;
    out.deps = deps;
    seed(k);
    delta.mark_read(k, counter, written_at);
    for (const StoredDep& d : deps) {
      // A stored dependency at level L becomes a context entry at L+1;
      // level-2 entries are kept for validation but never re-stored.
      seed(d.key);
      delta.require(d.key, d.counter, d.written_at,
                    static_cast<uint8_t>(std::min<int>(d.level + 1, 2)));
    }
  };

  for (size_t i = 0; i < q.keys.size() && !resp.abort; ++i) {
    const Key k = q.keys[i];

    // Cache attempt.
    if (params_.capacity != 0) {
      auto it = entries_.find(k);
      if (it != entries_.end() &&
          check(ctx, delta, k, it->second.counter, it->second.deps) ==
              Fit::kOk) {
        accept(i, k, it->second.value, it->second.counter,
               it->second.written_at, it->second.deps);
        resp.from_cache[i] = true;
        lru_.touch(k);
        continue;
      }
    }

    // Multi-round storage fetch.
    storage_contacted = true;
    bool done = false;
    for (int round = 0; round < params_.max_rounds; ++round) {
      std::vector<Key> fetch_keys(1, k);
      auto result = co_await storage_.get(std::move(fetch_keys), span_ctx);
      episode_rounds += 1;
      episode_bytes += result.response_bytes;
      if (result.failed) {
        // Replica unreachable through the retry budget; back off and let
        // the round loop decide (exhaustion aborts the transaction).
        co_await sim::sleep_for(rpc_.loop(), params_.retry_backoff);
        continue;
      }
      if (!result.items[0].has_value()) {
        // Key unknown to this replica.  If the transaction does not
        // require any particular version, serve the implicit initial
        // value; otherwise wait for replication.
        if (Dep need; !ctx_lookup(ctx, delta, k, need) || need.counter == 0) {
          accept(i, k, Value{}, 0, 0, DepList{});
          done = true;
          break;
        }
        co_await sim::sleep_for(rpc_.loop(), params_.retry_backoff);
        continue;
      }
      const storage::EvItem& item = *result.items[0];
      HydroStored stored = decode_message<HydroStored>(
          Buffer(item.payload.begin(), item.payload.end()));
      const Fit fit = check(ctx, delta, k, item.version.counter, stored.deps);
      if (fit == Fit::kTooOld) {
        // Stale replica: retry (possibly another replica) after a short
        // backoff — the §4.1 multi-round pattern.
        co_await sim::sleep_for(rpc_.loop(), params_.retry_backoff);
        continue;
      }
      if (fit == Fit::kConflict) {
        counters_.conflict_aborts.inc();
        resp.abort = true;
        break;
      }
      accept(i, k, stored.value, item.version.counter, item.written_at,
             stored.deps);
      insert_entry(k, Entry{stored.value, item.version.counter,
                            item.written_at, std::move(stored.deps)});
      done = true;
      break;
    }
    if (!done && !resp.abort) {
      if (Dep need; ctx_lookup(ctx, delta, k, need)) {
        LOG_DEBUG("hydro round exhaustion key=" << k << " need=" << need.counter
                  << " read=" << need.read << " level=" << int(need.level));
      }
      counters_.round_exhaustion_aborts.inc();
      resp.abort = true;
    }
  }

  resp.global_cut = storage_.global_cut();
  if (storage_contacted) {
    counters_.storage_fetch_rounds.inc(static_cast<uint64_t>(episode_rounds));
    if (metrics_ != nullptr) {
      metrics_->storage_episodes.inc();
      metrics_->storage_rounds.add(episode_rounds);
      metrics_->storage_read_bytes.add(static_cast<double>(episode_bytes));
    }
  } else {
    counters_.served_from_cache.inc();
    if (metrics_ != nullptr) metrics_->cache_hits.inc();
  }
  if (tracer_ != nullptr) {
    tracer_->annotate(span, "keys", static_cast<uint64_t>(q.keys.size()));
    tracer_->annotate(span, "hit", storage_contacted ? 0 : 1);
    tracer_->annotate(span, "rounds", static_cast<uint64_t>(episode_rounds));
    tracer_->annotate(span, "storage_bytes",
                      static_cast<uint64_t>(episode_bytes));
    if (resp.abort) tracer_->annotate(span, "abort", 1);
    tracer_->end(span, rpc_.now());
  }
  co_return rpc_.encode(resp);
}

}  // namespace faastcc::cache
