file(REMOVE_RECURSE
  "libfaastcc_faas.a"
)
