// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// codec, HLC, Zipf sampling, MV-store reads, snapshot-interval algebra,
// dependency-map merging, and the LRU index.
#include <benchmark/benchmark.h>

#include "cache/hydro_types.h"
#include "cache/lru_index.h"
#include "client/snapshot_interval.h"
#include "common/hlc.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/zipf.h"
#include "storage/messages.h"
#include "storage/mv_store.h"

namespace faastcc {
namespace {

void BM_HlcTick(benchmark::State& state) {
  HlcClock clock(1);
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.tick(++now));
  }
}
BENCHMARK(BM_HlcTick);

void BM_HlcUpdate(benchmark::State& state) {
  HlcClock clock(1);
  const Timestamp remote(1000, 5, 2);
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.update(remote, ++now));
  }
}
BENCHMARK(BM_HlcUpdate);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_CodecEncodeReadReq(benchmark::State& state) {
  storage::TccReadReq req;
  req.snapshot = Timestamp(100, 0, 0);
  for (int i = 0; i < state.range(0); ++i) {
    req.keys.push_back(static_cast<Key>(i));
    req.cached_ts.push_back(Timestamp::min());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_message(req));
  }
}
BENCHMARK(BM_CodecEncodeReadReq)->Arg(2)->Arg(16);

void BM_CodecDecodeReadReq(benchmark::State& state) {
  storage::TccReadReq req;
  req.snapshot = Timestamp(100, 0, 0);
  for (int i = 0; i < state.range(0); ++i) {
    req.keys.push_back(static_cast<Key>(i));
    req.cached_ts.push_back(Timestamp::min());
  }
  const Buffer b = encode_message(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message<storage::TccReadReq>(b));
  }
}
BENCHMARK(BM_CodecDecodeReadReq)->Arg(2)->Arg(16);

void BM_MvStoreReadAt(benchmark::State& state) {
  storage::MvStore store;
  Rng rng(3);
  for (Key k = 0; k < 1000; ++k) {
    for (uint64_t v = 0; v < static_cast<uint64_t>(state.range(0)); ++v) {
      store.install(k, "value!!", Timestamp(100 + v * 10, 0, 0));
    }
  }
  Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.read_at(k++ % 1000, Timestamp(100 + 25, 0, 0)));
  }
}
BENCHMARK(BM_MvStoreReadAt)->Arg(2)->Arg(16);

void BM_MvStoreInstallAndGc(benchmark::State& state) {
  for (auto _ : state) {
    storage::MvStore store;
    for (uint64_t v = 0; v < 128; ++v) {
      store.install(v % 16, "value!!", Timestamp(100 + v, 0, 0));
    }
    store.gc_before(Timestamp(100 + 100, 0, 0));
    benchmark::DoNotOptimize(store.num_versions());
  }
}
BENCHMARK(BM_MvStoreInstallAndGc);

void BM_IntervalNarrow(benchmark::State& state) {
  client::SnapshotInterval si;
  uint64_t t = 1;
  for (auto _ : state) {
    si = client::SnapshotInterval::full();
    si.narrow(Timestamp(t, 0, 0), Timestamp(t + 100, 0, 0));
    benchmark::DoNotOptimize(si);
    ++t;
  }
}
BENCHMARK(BM_IntervalNarrow);

void BM_DepMapMerge(benchmark::State& state) {
  cache::DepMap base;
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    base.require(rng.next_below(100000), i + 1, i, 1);
  }
  cache::DepMap incoming;
  for (int i = 0; i < 170; ++i) {
    incoming.require(rng.next_below(100000), i + 1, i, 1);
  }
  for (auto _ : state) {
    cache::DepMap work = base;
    work.merge(incoming);
    benchmark::DoNotOptimize(work.size());
  }
}
BENCHMARK(BM_DepMapMerge)->Arg(100)->Arg(2000);

void BM_DepMapEncode(benchmark::State& state) {
  cache::DepMap m;
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    m.require(rng.next_below(100000), i + 1, i, 1);
  }
  for (auto _ : state) {
    BufWriter w;
    m.encode(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DepMapEncode)->Arg(100)->Arg(2000);

void BM_LruTouch(benchmark::State& state) {
  cache::LruIndex lru;
  for (Key k = 0; k < 10000; ++k) lru.touch(k);
  Rng rng(9);
  for (auto _ : state) {
    lru.touch(rng.next_below(10000));
  }
}
BENCHMARK(BM_LruTouch);

}  // namespace
}  // namespace faastcc

BENCHMARK_MAIN();
