// Basic identifier and time types shared by every FaaSTCC module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace faastcc {

// Simulated time, in microseconds since simulation start.
using SimTime = int64_t;
using Duration = int64_t;

constexpr Duration microseconds(int64_t us) { return us; }
constexpr Duration milliseconds(int64_t ms) { return ms * 1000; }
constexpr Duration seconds(int64_t s) { return s * 1000 * 1000; }

constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }

// Identifies a process in the simulated cluster (storage partition,
// compute node, scheduler, client, ...).  Dense, assigned by the cluster
// builder.
using NodeId = uint32_t;

// Identifies a storage partition (shard) within the storage layer.
using PartitionId = uint32_t;

// Keys are dense integers; the workload generator draws them from a Zipf
// distribution over [0, num_keys).  A dense key space keeps serialized
// metadata sizes exact (8 bytes/key), mirroring the paper's accounting.
using Key = uint64_t;

// Values are opaque byte strings (the paper uses 8-byte payloads).
using Value = std::string;

// Unique id of one DAG execution (== one transaction attempt).
using TxnId = uint64_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace faastcc
