// Dependency metadata of the HydroCache baseline.
//
// HydroCache tracks causality explicitly: every stored value carries the
// versions in its causal past (its writer's reads, co-written siblings and
// one further level of their dependencies), and a transaction's context
// accumulates the union of everything it has read plus those values'
// dependencies.  This is the metadata whose size Fig. 5 measures and whose
// transfer and merging dominates HydroCache's dynamic-transaction latency.
//
// Representation (the dependency-metadata engine):
//
//   * Keys are interned through a per-thread `KeyInterner`, so an in-memory
//     dependency entry carries a dense `uint32_t` id instead of the raw
//     8-byte key.  Ids are process-internal: they never reach the wire, so
//     their assignment order has no observable effect on the simulation.
//   * A `DepMap` is a flat vector of 24-byte `Dep` entries kept sorted by
//     *raw key* (resolved through the interner), held behind a refcounted
//     copy-on-write node.  Copying a map — shipping a context downstream,
//     attaching it to a read request — bumps a refcount; mutation clones
//     only when the node is actually shared.  `merge`, `gc_before` and
//     `restrict_to` are linear scans over contiguous memory that build
//     their result in a reused thread-local scratch arena.
//   * Point insertions land in a small sorted overlay (`pending_`) that is
//     bulk-merged into the main node once it fills, so the read path's
//     require()/mark_read() bursts cost amortized O(log n) instead of a
//     vector memmove each.
//   * The wire encoding is canonical: entries are emitted sorted by key,
//     so the same logical map encodes to the same bytes regardless of
//     insertion order or stdlib hash implementation.  Wire size is
//     unchanged (4-byte count + 26 bytes/entry), which keeps the Fig. 5 /
//     Fig. 7 byte accounting identical to the hash-map representation.
//   * Because the wire image is canonical and sorted, a decoded map keeps
//     the raw bytes as its representation (`raw_`) instead of parsing
//     them: `lookup` binary-searches the fixed-width records directly and
//     re-encoding is one bulk copy.  Mutations of a raw-backed map go to
//     the same pending overlay (shadowing same-key records); the fold, the
//     prune (`filter`), the merge and the export traversal (`for_each`)
//     all operate at the record level with bulk copies, so a context can
//     live its entire decode → update → prune → re-ship cycle without
//     ever being parsed into entries or touching the interner.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "storage/messages.h"

namespace faastcc::cache {

// One causal requirement: "any consistent snapshot containing the carrier
// must contain key at version >= counter".  `read` marks entries for keys
// the transaction has actually read (their versions are fixed; a conflict
// against them aborts the DAG).  `written_at` drives metadata GC against
// the store's gossiped stable cut.
//
// `level` is the transitive distance from a direct read: 0 for versions
// the transaction read (or a write's co-written siblings), 1 for their
// direct dependencies, 2 for dependencies-of-dependencies.  Stored
// dependency lists keep levels 0-1 only — the bounded "nearest
// dependencies plus one level" scheme that keeps stored metadata at a
// stable fixpoint while transaction contexts accumulate the merged
// closure (the size asymmetry between Fig. 7 and Fig. 5).
//
// Canonical-form invariant: `read` entries keep `level == 0` (a read IS a
// distance-0 dependency; no consumer distinguishes a read entry's level,
// and pinning it makes merge insensitive to operation order).
//
// `key_id` is the interned key (see KeyInterner); 24 bytes total versus
// the ~56-byte heap node an unordered_map entry used to cost.
struct Dep {
  uint64_t counter = 0;
  SimTime written_at = 0;
  uint32_t key_id = 0;
  bool read = false;
  uint8_t level = 0;
};

// Wire size of one dependency entry: key + counter + written_at + flags.
// The wire carries the raw 8-byte key, never the interned id.
constexpr size_t kDepWireBytes = 8 + 8 + 8 + 1 + 1;

// Field offsets inside one canonical 26-byte wire record.
constexpr size_t kRawKeyOff = 0;
constexpr size_t kRawCounterOff = 8;
constexpr size_t kRawWrittenAtOff = 16;
constexpr size_t kRawReadOff = 24;
constexpr size_t kRawLevelOff = 25;

// Dense key-id table.  One instance per thread (the simulation is
// single-threaded per cluster; a multi-process or thread-per-cluster sweep
// runner gets an independent table per thread for free).  Ids are
// append-only and stay valid for the life of the thread.
//
// Workload keys are small integers, so the key->id direction is a direct-
// mapped array for keys below `kDenseLimit` — interning is one load on the
// decode/materialize hot path, not a hash probe.  Larger keys fall back to
// a hash map; both directions share the same id space.
class KeyInterner {
 public:
  static KeyInterner& instance() {
    thread_local KeyInterner interner;
    return interner;
  }

  uint32_t intern(Key k) {
    if (k < kDenseLimit) {
      if (k >= dense_.size()) grow_dense(k);
      uint32_t& slot = dense_[static_cast<size_t>(k)];
      if (slot == kUnassigned) {
        slot = static_cast<uint32_t>(keys_.size());
        keys_.push_back(k);
      }
      return slot;
    }
    auto [it, inserted] =
        ids_.emplace(k, static_cast<uint32_t>(keys_.size()));
    if (inserted) keys_.push_back(k);
    return it->second;
  }

  Key key_of(uint32_t id) const { return keys_[id]; }
  size_t size() const { return keys_.size(); }

 private:
  // 2M dense slots = 8 MB worst case, touched pages only.
  static constexpr Key kDenseLimit = Key{1} << 21;
  static constexpr uint32_t kUnassigned = UINT32_MAX;

  KeyInterner() = default;
  void grow_dense(Key k) {
    size_t target = dense_.empty() ? 1024 : dense_.size() * 2;
    if (target <= k) target = static_cast<size_t>(k) + 1;
    dense_.resize(std::min<size_t>(target, kDenseLimit), kUnassigned);
  }

  std::vector<uint32_t> dense_;
  std::unordered_map<Key, uint32_t> ids_;  // keys >= kDenseLimit only
  std::vector<Key> keys_;
};

class DepMap {
 public:
  // Iteration yields (raw key, entry) pairs in ascending key order — the
  // same order as the canonical wire encoding.
  class const_iterator {
   public:
    const_iterator() = default;
    explicit const_iterator(const Dep* p) : p_(p) {}
    std::pair<Key, const Dep&> operator*() const {
      return {KeyInterner::instance().key_of(p_->key_id), *p_};
    }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    const Dep* p_ = nullptr;
  };

  // Raises the requirement for `k` (keeps the max counter; `read` is
  // sticky once set for the surviving entry; `level` keeps the minimum).
  void require(Key k, uint64_t counter, SimTime written_at, uint8_t level);
  // Records that the transaction read `k` at `counter` (level 0).
  void mark_read(Key k, uint64_t counter, SimTime written_at);

  const Dep* find(Key k) const;
  // Materialization-free point query: a raw-backed map (fresh off the
  // wire) is binary-searched record-by-record; otherwise equivalent to
  // find().  `out.key_id` is NOT populated on the raw path — the caller
  // already has the key.  This is the consistency-check entry point: the
  // receiving cache probes a shipped context a few times and discards it,
  // so it must never pay for parsing every entry.
  bool lookup(Key k, Dep& out) const;
  size_t size() const {
    if (raw_) return raw_count() + pending_.size() - overlap_;
    return entries().size() + pending_.size();
  }
  bool empty() const { return size() == 0; }
  void reserve(size_t n);

  void merge(const DepMap& other);
  // Drops entries written before `horizon` (globally visible, so no longer
  // needed for consistency checks).  Read markers are never dropped while
  // the transaction runs; the context is rebuilt per DAG anyway.
  void gc_before(SimTime horizon);
  // Keeps only keys contained in `keys` (the static-transaction
  // optimization: with a declared read/write set, metadata irrelevant to
  // the remaining functions can be pruned before shipping downstream).
  // `read`-marked entries are exempt: they drive conflict aborts while the
  // transaction runs, so membership in the declared set never drops them —
  // the same invariant gc_before documents.
  template <typename KeySet>
  void restrict_to(const KeySet& keys) {
    filter([&keys](Key k, const Dep& d) {
      return d.read || keys.count(k) != 0;
    });
  }
  // Folds the point-insert overlay into the main node (no-op when empty).
  // A compacted map copies as a pure refcount bump; callers that are about
  // to take a shipped copy compact first so the fold happens once, in
  // place, instead of once per copy through the shared-node slow path.
  void compact() const { flush(); }

  // General one-pass prune: keeps entries satisfying keep(key, entry).
  // gc_before + restrict_to back to back are two full scans (and up to two
  // node rebuilds); callers that apply both fold the predicates into one
  // retain() call.
  template <typename Pred>
  void retain(Pred keep) {
    filter(keep);
  }

  size_t wire_bytes() const { return 4 + size() * kDepWireBytes; }

  size_t size_hint() const { return wire_bytes(); }

  // Canonical encoding: entries sorted by raw key.  Stable across
  // insertion orders, merge histories and stdlib implementations.  A
  // raw-backed map folds its overlay (a bulk raw-level merge) and then
  // re-emits its wire image with one bulk copy (it IS the canonical
  // encoding).
  template <typename W>
  void encode(W& w) const {
    flush();
    if (raw_) {
      if constexpr (requires { w.put_span(raw_.data, raw_.size); }) {
        w.put_span(raw_.data, raw_.size);
        return;
      }
      materialize();
    }
    encode_entries(w);
  }

  // Ascending-key traversal that never materializes a raw-backed map:
  // calls f(Key, const Dep&) for every entry.  `key_id` is NOT populated
  // for entries visited on the raw path — the callback already gets the
  // raw key.  This is the export/projection workhorse (metadata byte
  // accounting, commit dependency-list assembly, session-past rebuilds).
  template <typename F>
  void for_each(F&& f) const {
    flush();
    if (raw_) {
      const uint8_t* p = raw_records();
      const uint8_t* end = p + raw_count() * kDepWireBytes;
      for (; p != end; p += kDepWireBytes) {
        f(raw_u64(p + kRawKeyOff), parse_raw(p));
      }
      return;
    }
    for (const Dep& d : entries()) f(key_of(d), d);
  }
  static DepMap decode(BufReader& r);

  // Assembles a map directly in canonical wire form from entries appended
  // in ascending key order (each key at most once).  Rebuild paths that
  // stream a sorted source — the session-past projection, pruned exports —
  // skip the per-entry search/insert machinery entirely: the result is
  // raw-backed, so it also ships and re-encodes as one bulk copy.
  class RawBuilder {
   public:
    explicit RawBuilder(size_t max_entries) {
      buf_.reserve(4 + max_entries * kDepWireBytes);
      buf_.resize(4);
    }
    void append(Key k, uint64_t counter, SimTime written_at, bool read,
                uint8_t level) {
      const size_t off = buf_.size();
      buf_.resize(off + kDepWireBytes);
      uint8_t* p = buf_.data() + off;
      std::memcpy(p, &k, 8);
      std::memcpy(p + 8, &counter, 8);
      std::memcpy(p + 16, &written_at, 8);
      p[24] = read ? 1 : 0;
      p[25] = read ? 0 : level;  // canonical form: read entries at level 0
      ++count_;
    }
    DepMap finish() && {
      DepMap m;
      if (count_ == 0) return m;
      std::memcpy(buf_.data(), &count_, 4);
      m.raw_ = RawImage::own(std::move(buf_));
      return m;
    }

   private:
    Buffer buf_;
    uint32_t count_ = 0;
  };

  const_iterator begin() const {
    materialize();
    flush();
    const Entries& es = entries();
    return const_iterator(es.data());
  }
  const_iterator end() const {
    materialize();
    flush();
    const Entries& es = entries();
    return const_iterator(es.data() + es.size());
  }

 private:
  using Entries = std::vector<Dep>;

  static Key key_of(const Dep& d) {
    return KeyInterner::instance().key_of(d.key_id);
  }
  static const Entries& empty_entries();
  static Entries& scratch();

  const Entries& entries() const {
    return rep_ ? *rep_ : empty_entries();
  }

  static uint64_t raw_u64(const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static int64_t raw_i64(const uint8_t* p) {
    int64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  // Parses one wire record; `key_id` is left unset (callers that need it
  // intern explicitly — parsing must stay interning-free).
  static Dep parse_raw(const uint8_t* rec) {
    Dep d;
    d.counter = raw_u64(rec + kRawCounterOff);
    d.written_at = raw_i64(rec + kRawWrittenAtOff);
    d.read = rec[kRawReadOff] != 0;
    d.level = rec[kRawLevelOff];
    return d;
  }
  const uint8_t* raw_records() const { return raw_.data + 4; }
  size_t raw_count() const { return (raw_.size - 4) / kDepWireBytes; }

  // Where a key lives: the main node, the overlay, a raw wire record, or
  // nowhere.
  struct Loc {
    enum Where { kNone, kRep, kPending, kRaw } where = kNone;
    size_t idx = 0;
  };
  Loc locate(Key k) const;
  Dep& mutable_at(Loc loc);
  void insert_new(Dep d, Key k);
  // Shadows raw record `k` with an updated overlay entry.
  void promote(Dep d, Key k);
  // Logically const: folds the overlay into the node.  Inline guard so the
  // (overwhelmingly common) nothing-pending case costs one branch, not an
  // out-of-line call on every locate/encode.
  void flush() const {
    if (!pending_.empty()) flush_slow();
  }
  void flush_slow() const;
  // Logically const: parses a raw wire image into an entry node.  Content
  // is unchanged; only the representation switches.
  void materialize() const {
    if (raw_) materialize_slow();
  }
  void materialize_slow() const;

  template <typename W>
  void encode_entries(W& w) const {
    flush();
    const Entries& es = entries();
    w.put_u32(static_cast<uint32_t>(es.size()));
    const KeyInterner& interner = KeyInterner::instance();
    if constexpr (requires(W& ww) { ww.extend(size_t{0}); }) {
      // Contexts run to thousands of entries and are re-encoded at every
      // function hop; one bounds check for the whole record block beats
      // five per entry.  Offsets match the canonical 26-byte record.
      uint8_t* p = w.extend(es.size() * kDepWireBytes);
      for (const Dep& d : es) {
        const Key k = interner.key_of(d.key_id);
        std::memcpy(p, &k, 8);
        std::memcpy(p + 8, &d.counter, 8);
        std::memcpy(p + 16, &d.written_at, 8);
        p[24] = d.read ? 1 : 0;
        p[25] = d.level;
        p += kDepWireBytes;
      }
    } else if constexpr (requires(W& ww) {
                           ww.put_span(static_cast<const uint8_t*>(nullptr),
                                       size_t{0});
                         }) {
      // Tallying writer (CountingWriter): records are fixed-width, so the
      // size is arithmetic — never walk a 10^3-entry map just to count it.
      w.put_span(nullptr, es.size() * kDepWireBytes);
    } else {
      for (const Dep& d : es) {
        w.put_u64(interner.key_of(d.key_id));
        w.put_u64(d.counter);
        w.put_i64(d.written_at);
        w.put_bool(d.read);
        w.put_u8(d.level);
      }
    }
  }

  template <typename Pred>
  void filter(Pred keep) {
    flush();
    if (raw_) {
      // Raw-level prune: survivors are copied run-wise into a fresh wire
      // image; nothing is parsed or interned.  The all-kept case shares
      // the image untouched.
      const uint8_t* data = raw_.data;
      const size_t n = raw_count();
      size_t first = 0;
      while (first < n) {
        const uint8_t* rec = data + 4 + first * kDepWireBytes;
        if (!keep(raw_u64(rec + kRawKeyOff), parse_raw(rec))) break;
        ++first;
      }
      if (first == n) return;  // nothing dropped: share untouched
      Buffer out;
      out.reserve(raw_.size - kDepWireBytes);
      out.insert(out.end(), data, data + 4 + first * kDepWireBytes);
      uint32_t cnt = static_cast<uint32_t>(first);
      size_t run = first + 1;  // start of the next candidate kept-run
      for (size_t j = run; j <= n; ++j) {
        const uint8_t* rec = data + 4 + j * kDepWireBytes;
        if (j < n && keep(raw_u64(rec + kRawKeyOff), parse_raw(rec))) {
          continue;
        }
        if (j > run) {
          out.insert(out.end(), data + 4 + run * kDepWireBytes, rec);
          cnt += static_cast<uint32_t>(j - run);
        }
        run = j + 1;
      }
      if (cnt == 0) {
        raw_ = RawImage{};
        return;
      }
      std::memcpy(out.data(), &cnt, 4);
      raw_ = RawImage::own(std::move(out));
      return;
    }
    if (!rep_) return;
    if (rep_.use_count() == 1) {
      // Unique node: compact in place, no allocation.
      Entries& es = *rep_;
      es.erase(std::remove_if(
                   es.begin(), es.end(),
                   [&](const Dep& d) { return !keep(key_of(d), d); }),
               es.end());
      return;
    }
    const Entries& es = *rep_;
    size_t kept = 0;
    while (kept < es.size() && keep(key_of(es[kept]), es[kept])) ++kept;
    if (kept == es.size()) return;  // nothing dropped: share untouched
    Entries& s = scratch();
    s.clear();
    s.reserve(es.size() - 1);
    s.insert(s.end(), es.begin(), es.begin() + kept);
    for (size_t i = kept + 1; i < es.size(); ++i) {
      if (keep(key_of(es[i]), es[i])) s.push_back(es[i]);
    }
    rep_ = std::make_shared<Entries>(s);
  }

  // Sorted-by-key entry node, shared copy-on-write between maps.
  mutable std::shared_ptr<Entries> rep_;
  // Canonical wire image (count + sorted records) a decoded map is backed
  // by.  Mutually exclusive with rep_.  Mutations do NOT force parsing:
  // they land in the pending_ overlay (shadowing same-key records), and
  // flush folds the overlay back in at the raw level with bulk copies —
  // so a shipped context that picks up a few requirements per hop stays
  // in wire form for its whole life.
  //
  // The image is an owner + span rather than a whole buffer: a map decoded
  // through a shared-ownership BufReader aliases the records inside the
  // network message it arrived in (zero-copy decode), with `owner` keeping
  // that message's buffer alive.
  struct RawImage {
    std::shared_ptr<const void> owner;
    const uint8_t* data = nullptr;  // the u32 count, records follow
    size_t size = 0;                // 4 + n * kDepWireBytes
    explicit operator bool() const { return data != nullptr; }
    static RawImage own(Buffer b) {
      auto sp = std::make_shared<const Buffer>(std::move(b));
      return RawImage{sp, sp->data(), sp->size()};
    }
  };
  mutable RawImage raw_;
  // Small sorted overlay: keys absent from rep_ (rep-backed maps), or
  // point updates shadowing same-key records (raw-backed maps).
  mutable Entries pending_;
  // Raw-backed only: how many pending_ entries shadow an existing raw
  // record (they replace rather than add on flush).
  mutable uint32_t overlap_ = 0;
};

// A dependency list entry as stored alongside a value.  Level 0 entries
// are the writer's reads and co-written siblings; level 1 entries are the
// direct dependencies of those reads.
struct StoredDep {
  Key key = 0;
  uint64_t counter = 0;
  SimTime written_at = 0;
  uint8_t level = 0;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_u64(counter);
    w.put_i64(written_at);
    w.put_u8(level);
  }
  static StoredDep decode(BufReader& r) {
    StoredDep d;
    d.key = r.get_u64();
    d.counter = r.get_u64();
    d.written_at = r.get_i64();
    d.level = r.get_u8();
    return d;
  }
};

// Immutable, refcounted stored-dependency list.  One decoded or built list
// is shared by every holder — cache entry, read response, client context —
// instead of being vector-copied at each hop.  Wire format is identical to
// the storage::put_vec/get_vec encoding it replaces (u32 count + entries),
// so Fig. 7 / Fig. 8 byte accounting is unchanged.
class DepList {
 public:
  DepList() = default;
  DepList(std::vector<StoredDep> deps)  // NOLINT(google-explicit-constructor)
      : list_(deps.empty() ? nullptr
                           : std::make_shared<const std::vector<StoredDep>>(
                                 std::move(deps))) {}

  size_t size() const { return list_ ? list_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::vector<StoredDep>& items() const {
    static const std::vector<StoredDep> kEmpty;
    return list_ ? *list_ : kEmpty;
  }
  auto begin() const { return items().begin(); }
  auto end() const { return items().end(); }
  const StoredDep& operator[](size_t i) const { return items()[i]; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(size()));
    for (const StoredDep& d : items()) d.encode(w);
  }
  static DepList decode(BufReader& r) {
    const uint32_t n = r.get_u32();
    if (n == 0) return DepList();
    std::vector<StoredDep> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i) v.push_back(StoredDep::decode(r));
    return DepList(std::move(v));
  }

 private:
  std::shared_ptr<const std::vector<StoredDep>> list_;
};

// Payload persisted in the eventual store for every HydroCache write:
// the application value plus the dependency list.
struct HydroStored {
  Value value;
  DepList deps;

  template <typename W>
  void encode(W& w) const {
    w.put_bytes(value);
    deps.encode(w);
  }
  static HydroStored decode(BufReader& r) {
    HydroStored s;
    s.value = r.get_bytes();
    s.deps = DepList::decode(r);
    return s;
  }
};

}  // namespace faastcc::cache
