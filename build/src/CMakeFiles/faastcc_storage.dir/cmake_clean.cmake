file(REMOVE_RECURSE
  "CMakeFiles/faastcc_storage.dir/storage/eventual_store.cc.o"
  "CMakeFiles/faastcc_storage.dir/storage/eventual_store.cc.o.d"
  "CMakeFiles/faastcc_storage.dir/storage/mv_store.cc.o"
  "CMakeFiles/faastcc_storage.dir/storage/mv_store.cc.o.d"
  "CMakeFiles/faastcc_storage.dir/storage/stabilizer.cc.o"
  "CMakeFiles/faastcc_storage.dir/storage/stabilizer.cc.o.d"
  "CMakeFiles/faastcc_storage.dir/storage/storage_client.cc.o"
  "CMakeFiles/faastcc_storage.dir/storage/storage_client.cc.o.d"
  "CMakeFiles/faastcc_storage.dir/storage/tcc_partition.cc.o"
  "CMakeFiles/faastcc_storage.dir/storage/tcc_partition.cc.o.d"
  "libfaastcc_storage.a"
  "libfaastcc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
