# Empty dependencies file for example_fanout_pipeline.
# This may be replaced when dependencies are built.
