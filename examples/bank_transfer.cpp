// Snapshot Isolation extension (paper §7): concurrent read-modify-write
// cycles without lost updates.
//
// Accounts are debited/credited by a two-function composition; many
// transfers race on the same accounts.  Under plain TCC, two concurrent
// transfers can both read balance=100 and both write 90 — one debit is
// lost.  With the SI extension the second committer aborts and retries,
// so money is conserved.  This example runs both modes and audits the
// total balance.
#include <cstdio>
#include <string>

#include "harness/cluster.h"

using namespace faastcc;
using harness::Cluster;
using harness::ClusterParams;
using harness::SystemKind;

namespace {

constexpr Key kAccountBase = 1;  // accounts at keys 1..kAccounts
constexpr int kAccounts = 4;
constexpr int kInitialBalance = 1000;
constexpr int kTransfers = 40;

int to_int(const Value& v) {
  if (v.empty() || v[0] < '0' || v[0] > '9') return 0;
  return std::stoi(std::string(v.view()));
}

Buffer transfer_args(Key from, Key to, int amount) {
  BufWriter w;
  w.put_u64(from);
  w.put_u64(to);
  w.put_u32(static_cast<uint32_t>(amount));
  return w.take();
}

struct Audit {
  int committed = 0;
  int aborted_attempts = 0;
  long total = 0;
};

Audit run_mode(bool snapshot_isolation, const char* label) {
  ClusterParams params;
  params.system = SystemKind::kFaasTcc;
  params.faastcc.snapshot_isolation = snapshot_isolation;
  params.partitions = 4;
  params.compute_nodes = 4;
  params.clients = 0;
  params.workload.num_keys = 32;
  params.prewarm_caches = false;  // transfers must see fresh balances
  Cluster cluster(params);

  // First function: debit the source (read-modify-write).
  cluster.registry().register_function(
      "debit", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key from = r.get_u64();
        r.get_u64();
        const int amount = static_cast<int>(r.get_u32());
        auto vals = co_await env.txn.read(std::vector<Key>(1, from));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const int balance = to_int((*vals)[0]);
        env.txn.write(from, std::to_string(balance - amount));
        co_return Buffer{};
      });
  // Second function (another worker): credit the destination.
  cluster.registry().register_function(
      "credit", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        r.get_u64();
        const Key to = r.get_u64();
        const int amount = static_cast<int>(r.get_u32());
        auto vals = co_await env.txn.read(std::vector<Key>(1, to));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const int balance = to_int((*vals)[0]);
        env.txn.write(to, std::to_string(balance + amount));
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "seed_account", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        env.txn.write(r.get_u64(), std::to_string(kInitialBalance));
        co_return Buffer{};
      });

  cluster.start();

  net::RpcNode driver(cluster.network(), 900);
  Audit audit;
  int completed = 0;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    ++completed;
    if (done.committed) {
      ++audit.committed;
    } else {
      ++audit.aborted_attempts;
    }
  });
  auto pump_until = [&](int target) {
    while (completed < target && cluster.loop().now() < seconds(300)) {
      cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
    }
  };

  // Seed the accounts.
  TxnId next_txn = 1;
  for (int a = 0; a < kAccounts; ++a) {
    faas::FunctionSpec seed;
    seed.name = "seed_account";
    BufWriter w;
    w.put_u64(kAccountBase + static_cast<Key>(a));
    seed.args = w.take();
    faas::StartDagMsg start;
    start.txn_id = next_txn++;
    start.client = 900;
    start.spec = faas::DagSpec::chain({seed});
    driver.send(cluster.scheduler_address(), faas::kStartDag, start);
  }
  pump_until(kAccounts);
  cluster.loop().run_until(cluster.loop().now() + milliseconds(100));

  // Fire racing transfers in pairs; all debits hit account 0, so a lost
  // update on its balance *creates* money and the audit catches it (with
  // symmetric random transfers, lost debits and lost credits cancel out
  // in the sum).  Aborted attempts are retried after a short pause to
  // give the snapshot time to advance past the winner's commit.
  Rng rng(23);
  int committed_transfers = 0;
  while (committed_transfers < kTransfers &&
         cluster.loop().now() < seconds(300)) {
    const int before_committed = audit.committed;
    const int burst = 2;
    for (int i = 0; i < burst; ++i) {
      const Key from = kAccountBase;  // hot account: every debit races
      const Key to = kAccountBase + 1 +
                     static_cast<Key>(rng.next_below(kAccounts - 1));
      faas::FunctionSpec debit;
      debit.name = "debit";
      debit.args = transfer_args(from, to, 10);
      faas::FunctionSpec credit;
      credit.name = "credit";
      credit.args = transfer_args(from, to, 10);
      faas::StartDagMsg start;
      start.txn_id = next_txn++;
      start.client = 900;
      start.spec = faas::DagSpec::chain({debit, credit});
      driver.send(cluster.scheduler_address(), faas::kStartDag, start);
    }
    pump_until(completed + burst);
    cluster.loop().run_until(cluster.loop().now() + milliseconds(8));
    committed_transfers += audit.committed - before_committed;
  }

  // Audit: sum of balances must equal the seeded total.
  cluster.loop().run_until(cluster.loop().now() + milliseconds(100));
  for (int a = 0; a < kAccounts; ++a) {
    const Key k = kAccountBase + static_cast<Key>(a);
    const auto& p = cluster.tcc_partitions()[k % params.partitions];
    const auto r = p->store().read_at(k, Timestamp::max());
    audit.total += r.version != nullptr ? to_int(r.version->value) : 0;
  }
  audit.committed -= kAccounts;  // don't count the seeding transactions
  const long expected = static_cast<long>(kAccounts) * kInitialBalance;
  std::printf(
      "%-28s committed=%-3d conflict-aborts=%-3d total=%ld (expected %ld) "
      "%s\n",
      label, audit.committed, audit.aborted_attempts, audit.total, expected,
      audit.total == expected ? "OK" : "MONEY LOST");
  return audit;
}

}  // namespace

int main() {
  std::printf(
      "Racing transfers between %d accounts (read-modify-write across two "
      "functions):\n\n", kAccounts);
  const Audit si = run_mode(true, "FaaSTCC + SI extension:");
  const Audit tcc = run_mode(false, "FaaSTCC (plain TCC):");
  std::printf(
      "\nSI aborts conflicting writers (first committer wins) so the audit "
      "always balances;\nplain TCC permits concurrent writes to the same "
      "key, losing updates under races.\n");
  const long expected = static_cast<long>(kAccounts) * kInitialBalance;
  if (si.total != expected) {
    std::printf("ERROR: SI mode lost money!\n");
    return 1;
  }
  if (tcc.total == expected) {
    std::printf(
        "note: the plain-TCC run happened to balance this time; raise the "
        "race rate to see losses.\n");
  }
  return 0;
}
