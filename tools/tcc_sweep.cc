// tcc_sweep: run a declarative sweep plan across worker processes and
// write the deterministically merged artifact.
//
//   tcc_sweep --plan=plans/scale.json --jobs=8 --out=BENCH_scale.json
//
// The merged artifact is byte-identical for a given plan regardless of
// --jobs or completion order; wall-clock goes to stderr only.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/configs.h"
#include "harness/flags.h"
#include "harness/sweep.h"

namespace {

using namespace faastcc;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path;
  std::string out_path;
  int jobs = 1;
  bool verbose = false;
  bool list_configs_flag = false;
  bool dump_plan = false;

  harness::Flags flags("tcc_sweep",
                       "parallel sweep runner over RunSpec plans");
  flags.str("plan", "sweep plan file (faastcc.sweep_plan.v1)", &plan_path);
  flags.str("out", "write merged artifact here (default: stdout)", &out_path);
  flags.integer("jobs", "max concurrent worker processes", &jobs);
  flags.boolean("verbose", "per-run progress lines on stderr", &verbose);
  flags.boolean("dump-plan", "print expanded run ids and exit", &dump_plan);
  flags.boolean("list-configs", "list named configs and exit",
                &list_configs_flag);

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "tcc_sweep: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stdout);
    return 0;
  }
  if (list_configs_flag) {
    std::printf("named configs:\n");
    harness::list_configs(stdout);
    return 0;
  }
  if (plan_path.empty()) {
    std::fprintf(stderr, "tcc_sweep: --plan is required\n%s",
                 flags.usage().c_str());
    return 2;
  }

  std::string plan_text;
  if (!read_file(plan_path, &plan_text)) {
    std::fprintf(stderr, "tcc_sweep: cannot read %s\n", plan_path.c_str());
    return 2;
  }

  try {
    const harness::SweepPlan plan = harness::SweepPlan::from_text(plan_text);
    if (dump_plan) {
      for (const harness::SweepItem& item : plan.items) {
        std::printf("%s\n", item.id.c_str());
      }
      std::fprintf(stderr, "%zu runs\n", plan.items.size());
      return 0;
    }

    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.verbose = verbose;
    const harness::SweepResult result = harness::run_sweep(plan, opts);
    const std::string merged = harness::merge_to_json(plan, result);

    if (out_path.empty()) {
      std::fputs(merged.c_str(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "tcc_sweep: cannot write %s\n",
                     out_path.c_str());
        return 2;
      }
      out << merged;
    }

    std::fprintf(stderr,
                 "[tcc_sweep] %zu runs, %llu dags committed, "
                 "%llu sim events, %.1fs wall (jobs=%d)\n",
                 result.runs,
                 static_cast<unsigned long long>(result.total_committed),
                 static_cast<unsigned long long>(result.total_sim_events),
                 result.wall_seconds, jobs);
    if (result.runs_with_violations > 0) {
      std::fprintf(stderr,
                   "[tcc_sweep] %zu run(s) with oracle violations; first: "
                   "%s\n",
                   result.runs_with_violations,
                   result.records[result.first_violation].id.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcc_sweep: %s\n", e.what());
    return 2;
  }
}
