# Empty compiler generated dependencies file for faastcc_client_base.
# This may be replaced when dependencies are built.
