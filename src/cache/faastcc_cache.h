// The FaaSTCC caching layer (paper §4.3, Alg. 2), one instance per compute
// node.
//
// Entries are <key, value, t, promise> tuples.  A read request carries the
// client's snapshot interval; keys are processed in order against the
// running interval (Eq. 1/2), misses are fetched from the TCC storage in a
// single batched round at the interval's upper bound, and the narrowed
// interval is returned.
//
// The cache subscribes to updates for every key it holds.  Partitions push
// fresh versions of dirty subscribed keys every refresh period (50 ms in
// the paper) together with their current stable time; because the dirty
// set is complete for subscribed keys, the push's stable time also extends
// the promise of every *open* cached version of that partition (a version
// with no successor as of the push).  This keeps promises of rarely
// written keys fresh without per-key traffic.  Committed writes are not
// inserted eagerly (§4.7).
#pragma once

#include <unordered_map>

#include "cache/cache_messages.h"
#include "cache/lru_index.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::cache {

struct CacheParams {
  // Maximum number of entries; SIZE_MAX = unbounded (paper default), 0 =
  // cache disabled (§6.7's 0 % configuration).
  size_t capacity = SIZE_MAX;
  Duration lookup_cpu = microseconds(8);  // service time per request
  Duration retry_backoff = milliseconds(1);
};

class FaasTccCache {
 public:
  FaasTccCache(net::Network& network, net::Address self,
               storage::TccTopology topology, CacheParams params,
               Metrics* metrics, obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }

  size_t entry_count() const { return entries_.size(); }
  // Memory footprint: value bytes plus per-entry key/timestamp/promise
  // metadata (Fig. 8).
  size_t bytes() const { return bytes_; }

  struct Counters {
    Counter requests;
    Counter served_from_cache;  // requests fully satisfied locally
    Counter storage_fetches;
    Counter pushes_applied;
    Counter pushes_stale;
    Counter evictions;
  };
  const Counters& counters() const { return counters_; }

  struct Entry {
    Value value;
    Timestamp ts;
    Timestamp promise;
    // No successor known as of `promise`: the promise may be extended by a
    // later stable time of the owning partition.
    bool open = false;
  };

  // Test access.
  bool has(Key k) const { return entries_.count(k) != 0; }
  const Entry* peek(Key k) const;
  Timestamp partition_stable(PartitionId p) const {
    return partition_stable_.at(p);
  }

  // Installs an entry directly, bypassing the protocol (experiment
  // pre-warming, §6.1: "cache sizes are unbounded and were pre-warmed").
  // The caller must also register the matching storage subscription.
  void prewarm(const storage::VersionedValue& vv);

 private:
  static constexpr size_t kEntryOverhead = 8 + 8 + 8;  // key + ts + promise
  // Must cover at least one full gossip period of the stabilizer at the
  // configured backoff, or hot-key reads can exhaust retries under
  // extreme contention.
  static constexpr int kMaxFetchAttempts = 8;

  sim::Task<Buffer> on_read(Buffer req, net::Address from);
  void on_push(Buffer msg, net::Address from);

  // The promise currently claimable for an entry (extended by the owning
  // partition's pushed stable time when the version is open).
  Timestamp effective_promise(Key k, const Entry& e) const;

  void insert_or_update(const storage::TccReadResp::Entry& entry);
  void evict_to_capacity();

  net::RpcNode rpc_;
  storage::TccStorageClient storage_;
  CacheParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::unordered_map<Key, Entry> entries_;
  LruIndex lru_;
  size_t bytes_ = 0;
  // Highest global stable time observed anywhere; monotone per partition,
  // so always a safe read snapshot.
  Timestamp stable_est_;
  // Last pushed stable time per partition (promise extension).
  std::vector<Timestamp> partition_stable_;
  Counters counters_;
};

}  // namespace faastcc::cache
