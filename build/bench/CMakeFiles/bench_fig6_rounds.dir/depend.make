# Empty dependencies file for bench_fig6_rounds.
# This may be replaced when dependencies are built.
