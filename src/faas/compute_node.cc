#include "faas/compute_node.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "sim/future.h"

namespace faastcc::faas {

ComputeNode::ComputeNode(net::Network& network, net::Address self,
                         std::shared_ptr<FunctionRegistry> registry,
                         const AdapterFactory& adapter_factory,
                         ComputeNodeParams params, Metrics* metrics,
                         obs::Tracer* tracer)
    : rpc_(network, self),
      registry_(std::move(registry)),
      adapter_(adapter_factory(rpc_)),
      params_(params),
      metrics_(metrics),
      tracer_(tracer),
      ready_(network.loop()) {
  rpc_.handle_oneway(kTrigger, [this](Buffer b, net::Address from) {
    on_trigger(std::move(b), from);
  });
  rpc_.handle_oneway(kAbortNotice, [this](Buffer b, net::Address from) {
    on_abort_notice(std::move(b), from);
  });
}

void ComputeNode::start() {
  for (int i = 0; i < params_.executors; ++i) {
    sim::spawn(executor_loop());
  }
}

Duration ComputeNode::context_cost(size_t bytes) const {
  return static_cast<Duration>(static_cast<double>(bytes) / 1024.0 *
                               params_.context_cpu_us_per_kb);
}

void ComputeNode::gc_stale_joins() {
  // Opportunistic sweep, amortized over trigger arrivals.  In fault-free
  // runs sibling triggers arrive within a network delay of each other, so
  // nothing is ever old enough to collect.
  if (params_.join_gc_age <= 0 || joins_.size() < 64) return;
  const SimTime cutoff = rpc_.now() - params_.join_gc_age;
  for (auto it = joins_.begin(); it != joins_.end();) {
    if (it->second.created <= cutoff) {
      it = joins_.erase(it);
    } else {
      ++it;
    }
  }
}

void ComputeNode::on_trigger(Buffer msg, net::Address) {
  // Must be read before anything else: valid only for this delivery.
  const obs::TraceContext inbound = rpc_.inbound_trace();
  // Shared-ownership decode: the session/context payloads alias the wire
  // bytes in place, so the buffer is surrendered to the shared count (it
  // lives as long as any view does) instead of recycled.  Returning these
  // large payloads to the pool measures slower: they displace the small
  // hot buffers the pool exists to recycle.
  TriggerMsg t = decode_message<TriggerMsg>(
      std::make_shared<const Buffer>(std::move(msg)));
  counters_.triggers.inc();
  gc_stale_joins();
  if (aborted_.count(t.txn_id) != 0) {
    counters_.stale_triggers_dropped.inc();
    return;
  }
  const JoinKey key{t.txn_id, t.fn_index};
  if (executed_.count(key) != 0) {
    // A duplicated trigger for a function this node already ran (or
    // enqueued).  Executing it again would re-read at a different snapshot
    // and race the ghost's divergent writes against the real commit.
    counters_.stale_triggers_dropped.inc();
    return;
  }
  const auto deg = t.spec.in_degrees();
  const uint32_t parents = deg.at(t.fn_index);
  if (parents <= 1) {
    mark_executed(key);
    Work w;
    std::vector<Payload> ctxs;
    if (parents == 1) ctxs.push_back(std::move(t.context));
    w.trigger = std::move(t);
    w.parent_contexts = std::move(ctxs);
    w.trace = inbound;
    w.enqueued = rpc_.now();
    ready_.push(std::move(w));
    return;
  }
  // Join: buffer until every parent has delivered its context.
  auto& state = joins_[key];
  if (!state.parents_seen.insert(t.from_fn).second) {
    // Duplicated trigger from a parent we already heard from.
    counters_.stale_triggers_dropped.inc();
    return;
  }
  state.contexts.push_back(std::move(t.context));
  if (state.contexts.size() == 1) {
    state.created = rpc_.now();
    state.first = std::move(t);
    state.trace = inbound;
  }
  if (state.contexts.size() < parents) return;
  counters_.joins_merged.inc();
  mark_executed(key);
  Work w;
  w.trigger = std::move(state.first);
  w.parent_contexts = std::move(state.contexts);
  w.trace = state.trace;
  w.enqueued = rpc_.now();
  joins_.erase(key);
  ready_.push(std::move(w));
}

void ComputeNode::mark_executed(const JoinKey& key) {
  if (!executed_.insert(key).second) return;
  executed_order_.push_back(key);
  while (executed_order_.size() > params_.executed_dedup_cap) {
    executed_.erase(executed_order_.front());
    executed_order_.pop_front();
  }
}

void ComputeNode::on_abort_notice(Buffer msg, net::Address) {
  const AbortNoticeMsg n = decode_message<AbortNoticeMsg>(msg);
  rpc_.recycle(std::move(msg));
  aborted_.insert(n.txn_id);
  // Drop any half-assembled joins of the aborted transaction.
  for (auto it = joins_.begin(); it != joins_.end();) {
    if (it->first.txn == n.txn_id) {
      it = joins_.erase(it);
    } else {
      ++it;
    }
  }
  // Bound the tombstone set: these only exist to drop in-flight stragglers,
  // which arrive within a network delay.
  if (aborted_.size() > 10000) aborted_.clear();
}

sim::Task<void> ComputeNode::executor_loop() {
  for (;;) {
    Work w = co_await ready_.pop();
    co_await execute(std::move(w));
  }
}

void ComputeNode::send_abort(const TriggerMsg& t) {
  counters_.aborts_raised.inc();
  aborted_.insert(t.txn_id);
  DagDoneMsg done;
  done.txn_id = t.txn_id;
  done.committed = false;
  rpc_.send(t.client, kDagDone, done);
  // Tell every downstream node to drop state for this transaction.
  std::unordered_set<net::Address> downstream;
  for (net::Address a : t.placement) {
    if (a != rpc_.address()) downstream.insert(a);
  }
  for (net::Address a : downstream) {
    rpc_.send(a, kAbortNotice, AbortNoticeMsg{t.txn_id});
  }
}

sim::Task<void> ComputeNode::execute(Work work) {
  const TriggerMsg& t = work.trigger;
  if (aborted_.count(t.txn_id) != 0) {
    counters_.stale_triggers_dropped.inc();
    co_return;
  }

  obs::SpanHandle span;
  obs::TraceContext ctx;  // this function execution's own context
  if (tracer_ != nullptr) {
    span = tracer_->begin(work.trace, "fn", "compute", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "fn_index", t.fn_index);
    ctx = tracer_->context_of(span);
    // Time between trigger arrival and an executor picking the work up.
    tracer_->add_time(ctx.trace_id, obs::Bucket::kQueue,
                      rpc_.now() - work.enqueued);
  }
  const auto charge_compute = [this, &ctx](Duration d) {
    if (tracer_ != nullptr) {
      tracer_->add_time(ctx.trace_id, obs::Bucket::kCompute, d);
    }
  };
  const auto end_span = [this, &span](bool aborted) {
    if (tracer_ != nullptr) {
      if (aborted) tracer_->annotate(span, "aborted", 1);
      tracer_->end(span, rpc_.now());
    }
  };

  charge_compute(params_.dispatch_overhead);
  co_await sim::sleep_for(rpc_.loop(), params_.dispatch_overhead);

  // Deserializing and merging the inbound context(s) costs CPU time
  // proportional to their size.
  size_t inbound = 0;
  for (const Payload& c : work.parent_contexts) inbound += c.size();
  if (inbound > 0) {
    charge_compute(context_cost(inbound));
    co_await sim::sleep_for(rpc_.loop(), context_cost(inbound));
  }

  client::TxnInfo info;
  info.txn_id = t.txn_id;
  info.is_static = t.spec.is_static;
  info.declared_read_set = t.spec.declared_read_set;
  info.declared_write_set = t.spec.declared_write_set;
  info.trace = ctx;

  auto txn = adapter_->open(info, std::move(work.parent_contexts),
                            std::move(work.trigger.session));
  if (txn == nullptr) {
    send_abort(t);
    end_span(true);
    co_return;
  }

  const FunctionSpec& fn = t.spec.functions.at(t.fn_index);
  const FunctionBody* body = registry_->find(fn.name);
  if (body == nullptr) {
    LOG_ERROR("unknown function '" << fn.name << "'");
    send_abort(t);
    end_span(true);
    co_return;
  }

  ExecEnv env{*txn, fn.args, t.parent_result, rpc_.loop(), false};
  charge_compute(params_.function_service_time);
  co_await sim::sleep_for(rpc_.loop(), params_.function_service_time);
  Buffer result;
  try {
    result = co_await (*body)(env);
  } catch (const client::TxnAbort&) {
    env.abort_requested = true;
  }
  counters_.functions_executed.inc();
  if (env.abort_requested) {
    send_abort(t);
    end_span(true);
    co_return;
  }

  if (fn.children.empty()) {
    // Sink: commit and report to the client.
    auto session = co_await txn->commit();
    DagDoneMsg done;
    done.txn_id = t.txn_id;
    if (session.has_value()) {
      done.committed = true;
      done.session = std::move(*session);
      done.result = std::move(result);
    } else {
      aborted_.insert(t.txn_id);
      counters_.aborts_raised.inc();
    }
    rpc_.send(t.client, kDagDone, done, ctx);
    end_span(!done.committed);
    co_return;
  }

  // Forward context + result to every child.
  Buffer context = txn->export_context();
  charge_compute(context_cost(context.size()));
  co_await sim::sleep_for(rpc_.loop(), context_cost(context.size()));
  if (metrics_ != nullptr) {
    const auto md = static_cast<double>(txn->metadata_bytes());
    for (size_t i = 0; i < fn.children.size(); ++i) {
      metrics_->metadata_bytes.add(md);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->annotate(span, "context_bytes",
                      static_cast<uint64_t>(context.size()));
    tracer_->annotate(span, "metadata_bytes",
                      static_cast<uint64_t>(txn->metadata_bytes()));
  }
  // One message, re-sent per child: send() encodes from a const ref, so the
  // (potentially large) spec/context/result fields are never copied per
  // fan-out edge — only the unavoidable wire encode remains.
  TriggerMsg next;
  next.txn_id = t.txn_id;
  next.from_fn = t.fn_index;
  next.client = t.client;
  next.spec = t.spec;
  next.placement = t.placement;
  next.context = std::move(context);
  next.parent_result = std::move(result);
  for (uint32_t child : fn.children) {
    next.fn_index = child;
    rpc_.send(next.placement.at(child), kTrigger, next, ctx);
  }
  end_span(false);
}

}  // namespace faastcc::faas
