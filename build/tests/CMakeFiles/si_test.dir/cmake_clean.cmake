file(REMOVE_RECURSE
  "CMakeFiles/si_test.dir/si_test.cc.o"
  "CMakeFiles/si_test.dir/si_test.cc.o.d"
  "si_test"
  "si_test.pdb"
  "si_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
