#include "storage/tcc_partition.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "routing/topology_service.h"
#include "sim/future.h"
#include "sim/when_all.h"

namespace faastcc::storage {

TccPartition::TccPartition(net::Network& network, net::Address self,
                           PartitionId id,
                           std::vector<net::Address> all_partitions,
                           TccPartitionParams params, obs::Tracer* tracer,
                           check::ConsistencyOracle* oracle)
    : rpc_(network, self),
      id_(id),
      all_partitions_(std::move(all_partitions)),
      params_(params),
      tracer_(tracer),
      clock_(id),
      stabilizer_(id, all_partitions_.size(), params.stab_topology,
                  static_cast<uint32_t>(params.tree_fanout < 1
                                            ? 1
                                            : params.tree_fanout)),
      oracle_(oracle) {
  rpc_.handle(kTccRead, [this](Buffer b, net::Address from) {
    return on_read(std::move(b), from);
  });
  rpc_.handle(kTccPrepare, [this](Buffer b, net::Address from) {
    return on_prepare(std::move(b), from);
  });
  rpc_.handle(kTccCommit, [this](Buffer b, net::Address from) {
    return on_commit(std::move(b), from);
  });
  rpc_.handle(kTccSubscribe, [this](Buffer b, net::Address from) {
    return on_subscribe(std::move(b), from);
  });
  rpc_.handle(kTccUnsubscribe, [this](Buffer b, net::Address from) {
    return on_unsubscribe(std::move(b), from);
  });
  rpc_.handle(kTccAbort, [this](Buffer b, net::Address from) {
    return on_abort(std::move(b), from);
  });
  rpc_.handle_oneway(kTccGossip, [this](Buffer b, net::Address from) {
    on_gossip(std::move(b), from);
  });
  rpc_.handle_oneway(kTccSafeUp, [this](Buffer b, net::Address from) {
    on_safe_up(std::move(b), from);
  });
  rpc_.handle_oneway(kTccStableDown, [this](Buffer b, net::Address from) {
    on_stable_down(std::move(b), from);
  });
  rpc_.handle(kTccMigrateOut, [this](Buffer b, net::Address from) {
    return on_migrate_out(std::move(b), from);
  });
  rpc_.handle(kTccMigrateIn, [this](Buffer b, net::Address from) {
    return on_migrate_in(std::move(b), from);
  });
  rpc_.handle(kTccReplInstall, [this](Buffer b, net::Address from) {
    return on_repl_install(std::move(b), from);
  });
  rpc_.handle(kTccReplSeal, [this](Buffer b, net::Address from) {
    return on_repl_seal(std::move(b), from);
  });
  rpc_.handle(kTccBackfill, [this](Buffer b, net::Address from) {
    return on_backfill(std::move(b), from);
  });
}

void TccPartition::start() {
  if (started_) return;
  started_ = true;
  // Seed the stabilizer with our own safe time so stable_time() is defined
  // before the first gossip round completes.
  const Timestamp safe = published_safe();
  stabilizer_.on_gossip(id_, safe);
  if (params_.stab_topology == StabTopology::kTree && stabilizer_.is_root()) {
    // Only the root's fold covers every member, so only the root may merge
    // its own fold.  With children this is a no-op (unheard children pin
    // the fold to min()); for a single-partition cell it makes the stable
    // time defined immediately, matching the mesh.
    stabilizer_.on_stable_broadcast(stabilizer_.membership_tag(),
                                    stabilizer_.fold_subtree_min(safe));
  }
  sim::spawn(gossip_loop());
  sim::spawn(push_loop());
  sim::spawn(gc_loop());
}

void TccPartition::set_routing(routing::TablePtr table) {
  if (table == nullptr) return;
  if (table_ != nullptr && table->epoch <= table_->epoch) return;
  const bool first = (table_ == nullptr);
  table_ = std::move(table);
  all_partitions_.assign(table_->partitions.begin(), table_->partitions.end());
  if (table_->num_partitions() < stabilizer_.num_partitions()) {
    stabilizer_.contract_membership(table_->num_partitions());
  } else {
    stabilizer_.extend_membership(table_->num_partitions());
  }
  rpc_.set_routing_epoch(table_->epoch);
  if (repl_role_ == ReplRole::kFollower && id_ < table_->partitions.size()) {
    if (table_->partitions[id_] == rpc_.address()) {
      // The cluster agreed on our promotion bid (or a broadcast of it beat
      // the bid's reply here): take over the slot.
      promote_self();
    } else {
      // Any other bump names the current leader; follow it.
      leader_addr_ = table_->partitions[id_];
    }
  }
  if (first) {
    // Gate the client-facing traffic on the epoch.  kTccAbort stays
    // ungated: post-bump cleanup of a NACKed commit must still reach the
    // OLD owners holding the pending prepares.  kTccGossip, migration and
    // pushes are epoch-agnostic by design.
    rpc_.gate_on_epoch(kTccRead);
    rpc_.gate_on_epoch(kTccPrepare);
    rpc_.gate_on_epoch(kTccCommit);
    rpc_.gate_on_epoch(kTccSubscribe);
    rpc_.gate_on_epoch(kTccUnsubscribe);
  }
}

void TccPartition::set_topo_service(net::Address topo) {
  topo_service_ = topo;
  rpc_.on_stale_epoch([this] {
    // A gated request carried a newer epoch than ours: we missed the
    // broadcast.  Pull the table; correctness never depends on the push.
    if (!refresh_inflight_) sim::spawn(refresh_table());
  });
  rpc_.handle_oneway(routing::kTopoUpdate, [this](Buffer b, net::Address) {
    auto t = decode_message<routing::RoutingTable>(b);
    rpc_.recycle(std::move(b));
    set_routing(routing::make_table(std::move(t)));
  });
}

sim::Task<void> TccPartition::refresh_table() {
  refresh_inflight_ = true;
  auto resp = co_await rpc_.call_raw_retry(topo_service_, routing::kTopoGet,
                                           Buffer{},
                                           net::routing_refresh_policy());
  if (resp.has_value()) {
    auto t = decode_message<routing::RoutingTable>(*resp);
    rpc_.recycle(std::move(*resp));
    set_routing(routing::make_table(std::move(t)));
  }
  refresh_inflight_ = false;
}

void TccPartition::defer_serving() {
  serving_ = false;
  // The joiner's stabilizer keeps the strict startup barrier (everyone at
  // min() until genuinely heard); migrated stabilizer snapshots and live
  // gossip lift it within a gossip period of activation.
}

void TccPartition::begin_join(routing::TablePtr table,
                              size_t expected_sources) {
  // Re-join of a previously retired instance: its background loops exited
  // at retirement, so activation must respawn them, the old join ledger
  // (sources of the original join) must not satisfy the new one, and
  // serving must drop until the new parcels land (retire() leaves it set;
  // a no-op for a fresh joiner, which deferred serving at construction).
  retired_ = false;
  started_ = false;
  serving_ = false;
  join_applied_.clear();
  join_epoch_ = table->epoch;
  join_expected_ = expected_sources;
  set_routing(std::move(table));
  // A joiner that owns no slots (or steals only empty ones) has nothing to
  // wait for.
  if (expected_sources == 0) activate();
}

void TccPartition::begin_acquire(routing::TablePtr table,
                                 size_t expected_sources) {
  serving_ = false;
  acquiring_ = true;
  acquired_keys_.clear();
  join_applied_.clear();
  join_epoch_ = table->epoch;
  join_expected_ = expected_sources;
  set_routing(std::move(table));
  if (expected_sources == 0) activate();
}

void TccPartition::retire() {
  retired_ = true;
  // Invalidate the running loops and let start() respawn fresh ones if a
  // later scale-out re-joins this instance.
  ++loop_gen_;
  started_ = false;
  // serving_ stays true: owns() already refuses every key (no slot maps
  // here under the adopted table), and kTccAbort cleanup of pending
  // transactions prepared before the drain must not park forever.
}

sim::Task<void> TccPartition::parked() {
  counters_.handoff_parked.inc();
  const SimTime t0 = rpc_.now();
  sim::Promise<bool> p(rpc_.loop());
  parked_.push_back(p);
  co_await p.get_future();
  if (metrics_ != nullptr) {
    metrics_->histogram("routing.handoff_stall_us")
        .add(static_cast<double>(rpc_.now() - t0));
  }
}

void TccPartition::release_parked() {
  std::vector<sim::Promise<bool>> waiters = std::move(parked_);
  parked_.clear();
  for (auto& p : waiters) p.set_value(true);
}

void TccPartition::activate() {
  if (serving_) return;
  serving_ = true;
  if (oracle_ != nullptr) {
    if (acquiring_) {
      // A survivor of a contraction only inherited the drained slots; its
      // pre-owned keys may legitimately commit below the floor (pending
      // prepares assigned before the drain), so the floor is scoped to
      // exactly the keys that migrated in.
      oracle_->on_handoff(id_, handoff_floor_, acquired_keys_);
    } else {
      oracle_->on_handoff(id_, handoff_floor_);
    }
  }
  acquiring_ = false;
  acquired_keys_.clear();
  start();
  release_parked();
}

uint64_t TccPartition::physical_now_us() const {
  const int64_t t = rpc_.now() + params_.clock_offset_us;
  return t > 0 ? static_cast<uint64_t>(t) : 0;
}

Timestamp TccPartition::safe_time() {
  if (!pending_by_ts_.empty()) {
    return pending_by_ts_.begin()->first.prev();
  }
  // Advancing the clock guarantees every future prepare (and therefore
  // every future commit timestamp) exceeds the value we publish.
  return clock_.tick(physical_now_us());
}

TccReadResp::Entry TccPartition::read_one(Key key, Timestamp eff,
                                          Timestamp cached_ts) {
  TccReadResp::Entry e;
  e.key = key;
  const auto r = store_.read_at(key, eff);
  if (r.version == nullptr) {
    if (r.below_gc_horizon) {
      // The version the snapshot needs existed but has been collected.
      e.status = TccReadResp::Status::kMiss;
      counters_.misses.inc();
      return e;
    }
    // Key never written: serve the implicit initial version (empty value,
    // minimal timestamp).  Its promise follows the same rule as any other
    // version.
    e.ts = Timestamp::min();
  } else {
    e.ts = r.version->ts;
  }
  e.open = !r.next_ts.has_value();
  e.promise = r.next_ts.has_value()
                  ? r.next_ts->prev()
                  : std::max(e.ts, stabilizer_.stable_time());
  if (r.version != nullptr && cached_ts == e.ts) {
    e.status = TccReadResp::Status::kUnchanged;
    counters_.unchanged_responses.inc();
  } else {
    e.status = TccReadResp::Status::kValue;
    if (r.version != nullptr) e.value = r.version->value;
  }
  return e;
}

sim::Task<Buffer> TccPartition::on_read(Buffer req, net::Address) {
  // Valid only before the first co_await below.
  const obs::TraceContext inbound = rpc_.inbound_trace();
  if (!serving_) co_await parked();
  obs::SpanHandle span;
  if (tracer_ != nullptr) {
    span = tracer_->begin(inbound, "partition.read", "storage", rpc_.address(),
                          rpc_.now());
  }
  auto q = decode_message<TccReadReq>(req);
  rpc_.recycle(std::move(req));
  counters_.reads.inc();
  counters_.read_keys.inc(q.keys.size());
  co_await sim::sleep_for(
      rpc_.loop(), params_.request_cpu + params_.per_key_cpu *
                                             static_cast<Duration>(
                                                 q.keys.size()));
  TccReadResp resp;
  resp.stable_time = stabilizer_.stable_time();
  const Timestamp eff = std::min(q.snapshot, resp.stable_time);
  resp.entries.reserve(q.keys.size());
  size_t unchanged = 0;
  for (size_t i = 0; i < q.keys.size(); ++i) {
    if (!owns(q.keys[i])) {
      // The request matched our epoch when admitted, but the chain was
      // handed away while this handler slept.  No version data; the
      // client refreshes its table and re-routes.
      TccReadResp::Entry e;
      e.key = q.keys[i];
      e.status = TccReadResp::Status::kWrongOwner;
      counters_.wrong_owner_reads.inc();
      resp.entries.push_back(std::move(e));
      continue;
    }
    resp.entries.push_back(read_one(q.keys[i], eff, q.cached_ts[i]));
    if (resp.entries.back().status == TccReadResp::Status::kUnchanged) {
      ++unchanged;
    }
  }
  if (tracer_ != nullptr) {
    tracer_->annotate(span, "keys", static_cast<uint64_t>(q.keys.size()));
    tracer_->annotate(span, "unchanged", static_cast<uint64_t>(unchanged));
    tracer_->end(span, rpc_.now());
  }
  co_return rpc_.encode(resp);
}

bool TccPartition::si_check_and_lock(TxnId txn, Timestamp snapshot_ts,
                                     const std::vector<Key>& keys) {
  for (Key k : keys) {
    // First-committer-wins: a version installed after the transaction's
    // read snapshot, or a concurrent prepared writer, conflicts.
    const auto newest = store_.newest_ts(k);
    if (newest.has_value() && *newest > snapshot_ts) {
      counters_.si_conflicts.inc();
      return false;
    }
    if (auto it = write_locks_.find(k);
        it != write_locks_.end() && it->second != txn) {
      counters_.si_conflicts.inc();
      return false;
    }
  }
  auto& locked = locked_keys_[txn];
  for (Key k : keys) {
    write_locks_[k] = txn;
    locked.push_back(k);
  }
  return true;
}

void TccPartition::release_locks(TxnId txn) {
  auto it = locked_keys_.find(txn);
  if (it == locked_keys_.end()) return;
  for (Key k : it->second) {
    auto lock = write_locks_.find(k);
    if (lock != write_locks_.end() && lock->second == txn) {
      write_locks_.erase(lock);
    }
  }
  locked_keys_.erase(it);
}

void TccPartition::resolve_pending(TxnId txn) {
  auto it = pending_by_txn_.find(txn);
  if (it != pending_by_txn_.end()) {
    pending_by_ts_.erase(it->second.ts);
    pending_by_txn_.erase(it);
  }
}

void TccPartition::remember_resolved(TxnId txn, Timestamp ts) {
  auto [it, inserted] = resolved_.try_emplace(txn, ts);
  if (!inserted) {
    it->second = ts;
    return;
  }
  resolved_order_.push_back(txn);
  // FIFO eviction of the oldest entries only: a wholesale clear would also
  // forget *recent* transactions, and a commit retry landing just after
  // the clear would re-install its writes — on the fast path minting a
  // second version at a fresh timestamp.
  while (resolved_order_.size() > params_.resolved_cap) {
    resolved_.erase(resolved_order_.front());
    resolved_order_.pop_front();
  }
}

void TccPartition::expire_stale_prepares() {
  if (params_.prepare_ttl <= 0) return;
  const SimTime cutoff = rpc_.now() - params_.prepare_ttl;
  for (auto it = pending_by_txn_.begin(); it != pending_by_txn_.end();) {
    if (it->second.since <= cutoff) {
      // The coordinator is gone (crashed, or gave up after retry
      // exhaustion): stop pinning the safe time and release SI locks.
      counters_.prepares_expired.inc();
      pending_by_ts_.erase(it->second.ts);
      release_locks(it->first);
      remember_resolved(it->first, Timestamp::min());
      it = pending_by_txn_.erase(it);
    } else {
      ++it;
    }
  }
}

sim::Task<Buffer> TccPartition::on_prepare(Buffer req, net::Address) {
  auto q = decode_message<TccPrepareReq>(req);
  rpc_.recycle(std::move(req));
  if (!serving_) co_await parked();
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  TccPrepareResp resp;
  // Ownership recheck after the sleep: chains named by the prepare may
  // have been handed away while this handler was parked or sleeping.
  for (Key k : q.write_keys) {
    if (owns(k)) continue;
    resp.ok = false;
    co_return rpc_.encode(resp);
  }
  // Duplicated delivery or timed-out retry of an outstanding prepare:
  // answer with the registered timestamp instead of pinning the safe time
  // a second time (the stray entry would never be resolved).
  if (auto it = pending_by_txn_.find(q.txn); it != pending_by_txn_.end()) {
    counters_.duplicate_prepares.inc();
    resp.ok = true;
    resp.prepare_ts = it->second.ts;
    co_return rpc_.encode(resp);
  }
  if (resolved_.count(q.txn) != 0) {
    // The transaction already committed or aborted here; a late duplicate
    // must not re-pin the safe time.  The coordinator has moved on, so the
    // refusal is never acted upon.
    counters_.duplicate_prepares.inc();
    resp.ok = false;
    co_return rpc_.encode(resp);
  }
  if (q.si_mode && !si_check_and_lock(q.txn, q.snapshot_ts, q.write_keys)) {
    resp.ok = false;
    co_return rpc_.encode(resp);
  }
  clock_.update(q.dep_ts, physical_now_us());
  const Timestamp prepare_ts = clock_.tick(physical_now_us());
  pending_by_ts_.emplace(prepare_ts, q.txn);
  pending_by_txn_.emplace(q.txn, PendingTxn{prepare_ts, rpc_.now()});
  resp.prepare_ts = prepare_ts;
  co_return rpc_.encode(resp);
}

sim::Task<Buffer> TccPartition::on_abort(Buffer req, net::Address) {
  auto q = decode_message<TccAbortReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  counters_.aborts.inc();
  release_locks(q.txn);
  resolve_pending(q.txn);
  remember_resolved(q.txn, Timestamp::min());
  co_return Buffer{};
}

void TccPartition::install_writes(const TccCommitReq& req) {
  for (const auto& kv : req.writes) {
    if (params_.chaos_drop_install) {
      // Chaos: ack without installing (oracle must flag lost-write).
      continue;
    }
    store_.install(kv.key, kv.value, req.commit_ts);
    if (oracle_ != nullptr) {
      oracle_->on_install(id_, kv.key, req.commit_ts, req.txn, kv.value);
    }
    if (params_.chaos_double_install) {
      // Chaos: mint a second version (oracle must flag duplicate-install).
      const Timestamp twin = req.commit_ts.next();
      store_.install(kv.key, kv.value, twin);
      if (oracle_ != nullptr) {
        oracle_->on_install(id_, kv.key, twin, req.txn, kv.value);
      }
    }
    if (subscribers_.count(kv.key) != 0) dirty_.insert(kv.key);
  }
  counters_.commits.inc();
}

sim::Task<Buffer> TccPartition::on_commit(Buffer req, net::Address) {
  auto q = decode_message<TccCommitReq>(req);
  rpc_.recycle(std::move(req));
  if (!serving_) co_await parked();
  co_await sim::sleep_for(
      rpc_.loop(), params_.request_cpu + params_.per_key_cpu *
                                             static_cast<Duration>(
                                                 q.writes.size()));
  if (auto rc = resolved_.find(q.txn); rc != resolved_.end()) {
    // Duplicated delivery or timed-out retry of a commit already applied
    // here (or of a transaction expired/aborted meanwhile).  Answer with
    // the recorded timestamp; re-installing would mint a second version on
    // the fast path.  A min() record means the txn was aborted or its
    // prepare expired *without* installing anything — acking such a retry
    // would report commit for writes this partition dropped, so it must be
    // refused (the coordinator then reports the abort to the client).
    counters_.duplicate_commits.inc();
    TccCommitResp dup_resp;
    dup_resp.ok =
        rc->second != Timestamp::min() || params_.chaos_ack_expired_commit;
    BufWriter dup_w;
    dup_resp.encode(dup_w);
    put_ts(dup_w, rc->second == Timestamp::min() ? q.commit_ts : rc->second);
    co_return dup_w.take();
  }
  // Ownership recheck after the sleep: the written chains may have been
  // handed to another partition while this commit was in flight.  Refuse
  // WITHOUT installing — the old owner no longer holds the chains and the
  // new owner's dedup table never saw this txn, so installing on either
  // side risks a duplicate version.  Release any prepared slot so the
  // safe time is not pinned by a commit that can never apply; the
  // coordinator surfaces the abort (the documented torn-abort class).
  for (const auto& kv : q.writes) {
    if (owns(kv.key)) continue;
    release_locks(q.txn);
    resolve_pending(q.txn);
    remember_resolved(q.txn, Timestamp::min());
    TccCommitResp refuse;
    refuse.ok = false;
    BufWriter rw;
    refuse.encode(rw);
    put_ts(rw, q.commit_ts);
    co_return rw.take();
  }
  if (q.commit_ts == Timestamp::min()) {
    // Single-partition fast path: no prepare round happened; the partition
    // assigns a commit timestamp above the transaction's causal past.
    if (params_.chaos_ignore_dep) {
      // Chaos: skip the causal clock update and assign a timestamp below
      // the transaction's reads (oracle must flag causal-order).
      q.commit_ts = Timestamp(0, ++chaos_ticks_ & 0xfff, id_);
    } else {
      clock_.update(q.dep_ts, physical_now_us());
      q.commit_ts = clock_.tick(physical_now_us());
    }
  } else {
    clock_.update(q.commit_ts, physical_now_us());
    release_locks(q.txn);
    resolve_pending(q.txn);
  }
  remember_resolved(q.txn, q.commit_ts);
  install_writes(q);
  if (repl_role_ == ReplRole::kLeader &&
      (!followers_.empty() || !followers_behind_.empty())) {
    // The ack below asserts durability at f+1 (us plus every caught-up
    // follower): withhold it until the replication fan-out settles.  A
    // follower whose stream the bounded retry could not keep flowing is
    // demoted to the behind set rather than blocking the commit forever.
    co_await replicate_commit(q.txn, q.commit_ts, std::move(q.writes));
  }
  TccCommitResp resp;
  resp.ok = true;
  BufWriter w;
  resp.encode(w);
  // The assigned commit timestamp is returned so the fast path can report
  // it; the general path already knows it.
  put_ts(w, q.commit_ts);
  co_return w.take();
}

bool TccPartition::ctl_stale(uint64_t seq, net::Address from) {
  // Sequenced control requests (subscribe/unsubscribe) from one subscriber
  // must apply in issue order: a duplicated or delayed retry of an older
  // request arriving after a newer one would resurrect a cancelled
  // subscription (or cancel a live one).  seq 0 = unsequenced, always apply.
  if (seq == 0) return false;
  auto& newest = ctl_seq_seen_[from];
  if (seq <= newest) return true;
  newest = seq;
  return false;
}

sim::Task<Buffer> TccPartition::on_subscribe(Buffer req, net::Address from) {
  auto q = decode_message<SubscribeReq>(req);
  rpc_.recycle(std::move(req));
  if (!serving_) co_await parked();
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  if (ctl_stale(q.seq, from)) co_return Buffer{};
  for (Key k : q.keys) {
    // Keys handed away while this handler slept are skipped: the cache
    // re-subscribes at the new owner once it adopts the fresh table.
    if (!owns(k)) continue;
    add_subscriber(k, from);
    // Re-announce the key's latest version on the next push: a successor
    // may have been installed between the read that triggered this
    // subscription and now, and the subscriber must not treat its (stale)
    // entry as open past that successor.
    dirty_.insert(k);
  }
  co_return Buffer{};
}

void TccPartition::drop_subscriber(Key k, net::Address cache) {
  auto it = subscribers_.find(k);
  if (it == subscribers_.end()) return;
  if (it->second.erase(cache) == 0) return;
  if (it->second.empty()) subscribers_.erase(it);
  auto ref = subscriber_refs_.find(cache);
  if (ref != subscriber_refs_.end() && --ref->second == 0) {
    subscriber_refs_.erase(ref);
    subscriber_addresses_.erase(cache);
  }
}

sim::Task<Buffer> TccPartition::on_unsubscribe(Buffer req, net::Address from) {
  auto q = decode_message<SubscribeReq>(req);
  rpc_.recycle(std::move(req));
  if (!serving_) co_await parked();
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  if (ctl_stale(q.seq, from)) co_return Buffer{};
  for (Key k : q.keys) drop_subscriber(k, from);
  co_return Buffer{};
}

namespace {

// Metric key per membership-drop reason.  The aggregate
// "stab.stale_drops" keeps counting alongside so existing consumers
// (summaries, sweep cells) stay intact.
const char* stab_drop_metric(Stabilizer::DropReason r) {
  switch (r) {
    case Stabilizer::DropReason::kUnknownMember:
      return "stab.drops.unknown_member";
    case Stabilizer::DropReason::kStaleReportTag:
      return "stab.drops.stale_report";
    case Stabilizer::DropReason::kForeignChild:
      return "stab.drops.foreign_child";
    case Stabilizer::DropReason::kStaleBroadcastTag:
      return "stab.drops.stale_broadcast";
  }
  return "stab.drops.unknown_member";
}

void count_stab_drop(Metrics* metrics, const Stabilizer& stab) {
  if (metrics == nullptr) return;
  metrics->counter("stab.stale_drops").inc();
  metrics->counter(stab_drop_metric(stab.last_drop_reason())).inc();
}

}  // namespace

void TccPartition::on_gossip(Buffer msg, net::Address) {
  auto g = decode_message<GossipMsg>(msg);
  rpc_.recycle(std::move(msg));
  ++gossip_in_since_round_;
  if (!stabilizer_.on_gossip(g.partition, g.safe_time)) {
    count_stab_drop(metrics_, stabilizer_);
  }
}

void TccPartition::on_safe_up(Buffer msg, net::Address) {
  auto m = decode_message<SafeUpMsg>(msg);
  rpc_.recycle(std::move(msg));
  ++gossip_in_since_round_;
  if (!stabilizer_.on_child_report(m.partition, m.membership,
                                   m.subtree_min)) {
    count_stab_drop(metrics_, stabilizer_);
  }
}

void TccPartition::on_stable_down(Buffer msg, net::Address) {
  auto m = decode_message<StableDownMsg>(msg);
  rpc_.recycle(std::move(msg));
  ++gossip_in_since_round_;
  if (!stabilizer_.on_stable_broadcast(m.membership, m.stable)) {
    count_stab_drop(metrics_, stabilizer_);
  }
}

sim::Task<void> TccPartition::gossip_loop() {
  const uint64_t gen = loop_gen_;
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.gossip_period);
    if (retired_ || gen != loop_gen_) co_return;
    // A deposed leader (crashed, revived after its follower was promoted)
    // must keep its gossip stream quiet: the promoted follower publishes
    // this partition id's safe time now.  Always true without replication.
    if (!is_current_leader()) continue;
    // Piggyback prepare-TTL enforcement on the gossip beat: a pure state
    // scan (no events, no randomness), and a no-op whenever every pending
    // prepare is younger than the TTL — i.e. always, in fault-free runs.
    expire_stale_prepares();
    if (params_.stab_topology == StabTopology::kTree) {
      tree_gossip_round();
      continue;
    }
    GossipMsg g{id_, published_safe()};
    stabilizer_.on_gossip(id_, g.safe_time);
    uint64_t sent = 0;
    for (net::Address peer : all_partitions_) {
      if (peer == rpc_.address()) continue;
      rpc_.send(peer, kTccGossip, g);
      ++sent;
    }
    note_gossip_round(sent);
  }
}

// One beat of the aggregation tree (stabilization_topology=tree): refresh
// our own safe time, fold it with the freshest child reports, send the
// fold to the parent (the root merges it into the stable directly), and
// relay the current stable down to every child.  Relay is periodic-only —
// no forward-on-receive — so a round is exactly 2(P-1) messages
// cell-wide: one up and one down edge per parent/child pair.
void TccPartition::tree_gossip_round() {
  const Timestamp safe = published_safe();
  stabilizer_.on_gossip(id_, safe);
  const uint32_t membership = stabilizer_.membership_tag();
  const Timestamp fold = stabilizer_.fold_subtree_min(safe);
  uint64_t sent = 0;
  if (stabilizer_.is_root()) {
    stabilizer_.on_stable_broadcast(membership, fold);
  } else {
    const PartitionId parent = stabilizer_.parent();
    if (parent < all_partitions_.size()) {
      rpc_.send(all_partitions_[parent], kTccSafeUp,
                SafeUpMsg{id_, membership, fold});
      ++sent;
    }
  }
  const StableDownMsg down{membership, stabilizer_.stable_time()};
  for (size_t i = 0; i < stabilizer_.num_children(); ++i) {
    const PartitionId c = stabilizer_.child(i);
    // A child adopted from a membership tag may not have an address yet
    // (routing-table broadcast still in flight); it is reached next round.
    if (c < all_partitions_.size()) {
      rpc_.send(all_partitions_[c], kTccStableDown, down);
      ++sent;
    }
  }
  note_gossip_round(sent);
}

void TccPartition::note_gossip_round(uint64_t msgs_sent) {
  const uint64_t fan_in = gossip_in_since_round_;
  gossip_in_since_round_ = 0;
  if (metrics_ == nullptr) return;
  metrics_->counter("stab.gossip_rounds").inc();
  metrics_->counter("stab.gossip_msgs").inc(msgs_sent);
  metrics_->histogram("stab.fan_in").add(static_cast<double>(fan_in));
  const Timestamp stable = stabilizer_.stable_time();
  const uint64_t now_us = physical_now_us();
  const uint64_t stable_us =
      stable == Timestamp::min() ? 0 : stable.physical_us();
  metrics_->histogram("stab.stable_lag_us")
      .add(now_us > stable_us ? static_cast<double>(now_us - stable_us)
                              : 0.0);
}

sim::Task<void> TccPartition::push_loop() {
  const uint64_t gen = loop_gen_;
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.push_period);
    if (retired_ || gen != loop_gen_) co_return;
    // A deposed leader's push channel is dead: the promoted follower owns
    // the per-partition sequence now, and a stale frame would only force
    // subscribers to close entries.  Always true without replication.
    if (!is_current_leader()) continue;
    const Timestamp stable = stabilizer_.stable_time();
    if (params_.push_coalescing) {
      push_round_coalesced(stable);
      continue;
    }
    // Group fresh versions per subscriber.
    std::unordered_map<net::Address, PushMsg> batches;
    for (Key k : dirty_) {
      auto sub_it = subscribers_.find(k);
      if (sub_it == subscribers_.end()) continue;
      const auto r = store_.read_at(k, Timestamp::max());
      if (r.version == nullptr) continue;
      VersionedValue vv;
      vv.key = k;
      vv.value = r.version->value;
      vv.ts = r.version->ts;
      vv.promise = std::max(vv.ts, stable);
      for (net::Address sub : sub_it->second) {
        batches[sub].updates.push_back(vv);
      }
    }
    dirty_.clear();
    // Every subscriber gets a push each period, even an empty one: the
    // absence of a key in the batch is the promise-extension signal.
    for (net::Address sub : subscriber_addresses_) {
      auto& batch = batches[sub];  // creates empty batches as needed
      batch.partition = id_;
      // Channel sequence, starting at 1 and persisting across resubscribes:
      // a gap tells the subscriber a (possibly announcing) push was lost.
      batch.seq = ++push_seq_out_[sub];
      batch.stable_time = stable;
      counters_.pushes.inc();
      rpc_.send(sub, kTccPush, batch);
    }
  }
}

// push_coalescing=true: one maintenance round, framed as PushBatchMsg.
// Identical pub/sub semantics to the PushMsg path (same dirty-set drain,
// same per-subscriber channel sequence, empty frames still sent as the
// promise-extension heartbeat) but each update drops its 8-byte promise —
// the pushed promise is always max(ts, stable) and the receiver re-derives
// it from the header's stable time, losslessly.
void TccPartition::push_round_coalesced(Timestamp stable) {
  std::unordered_map<net::Address, PushBatchMsg> batches;
  for (Key k : dirty_) {
    auto sub_it = subscribers_.find(k);
    if (sub_it == subscribers_.end()) continue;
    const auto r = store_.read_at(k, Timestamp::max());
    if (r.version == nullptr) continue;
    PushUpdate u;
    u.key = k;
    u.value = r.version->value;
    u.ts = r.version->ts;
    for (net::Address sub : sub_it->second) {
      batches[sub].updates.push_back(u);
    }
  }
  dirty_.clear();
  for (net::Address sub : subscriber_addresses_) {
    auto& batch = batches[sub];  // creates empty batches as needed
    batch.partition = id_;
    batch.seq = ++push_seq_out_[sub];
    batch.stable_time = stable;
    counters_.pushes.inc();
    rpc_.send(sub, kTccPushBatch, batch);
  }
}

sim::Task<Buffer> TccPartition::on_migrate_out(Buffer req, net::Address) {
  auto q = decode_message<TccMigrateOutReq>(req);
  rpc_.recycle(std::move(req));
  const auto cache_key = std::make_pair(q.table.epoch, q.target);
  if (auto it = migrate_out_cache_.find(cache_key);
      it != migrate_out_cache_.end()) {
    // Duplicated or retried migrate-out: the chains left the store on the
    // first attempt, so the only sound answer is a replay of the original
    // parcel.
    co_return rpc_.encode(it->second);
  }
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  // Re-check after the sleep: a duplicated delivery may have raced this
  // handler to the extraction while both were sleeping.
  if (auto it = migrate_out_cache_.find(cache_key);
      it != migrate_out_cache_.end()) {
    co_return rpc_.encode(it->second);
  }
  TccMigrateOutResp resp;
  if (table_ != nullptr && q.table.epoch < table_->epoch) {
    // A coordinator retrying an epoch this partition has moved past
    // entirely: nothing sound to extract.
    resp.ok = false;
    co_return rpc_.encode(resp);
  }
  // Adopt the carried table first (self-contained even if the broadcast
  // was lost): from here on the epoch gate refuses old-epoch traffic and
  // owns() steers already-admitted, still-sleeping handlers away from the
  // migrated chains.
  set_routing(routing::make_table(q.table));
  const PartitionId target = q.target;
  auto moved = store_.extract_chains(
      [this, target](Key k) { return table_->partition_of(k) == target; });
  resp.chains.reserve(moved.size());
  for (auto& [key, versions] : moved) {
    // Drop pub/sub state for the moved keys: the caches re-home their
    // subscriptions at the new owner when they adopt the fresh table.
    dirty_.erase(key);
    if (auto sit = subscribers_.find(key); sit != subscribers_.end()) {
      const std::vector<net::Address> subs(sit->second.begin(),
                                           sit->second.end());
      for (net::Address c : subs) drop_subscriber(key, c);
    }
    MigratedChain chain;
    chain.key = key;
    chain.versions.reserve(versions.size());
    for (auto& v : versions) {
      chain.versions.push_back(MigratedVersion{std::move(v.value), v.ts});
    }
    resp.chains.push_back(std::move(chain));
  }
  counters_.keys_migrated_out.inc(resp.chains.size());
  resp.last_heard = stabilizer_.last_heard_all();
  // Taken LAST, after sealing and extraction: >= every promise this
  // partition ever issued for the migrated keys (promises are bounded by
  // the published safe time, which is monotone) and >= every migrated
  // version's timestamp (the clock advanced past each install).  The
  // target must never commit at or below it.
  resp.safe_time = safe_time();
  resp.ok = true;
  migrate_out_cache_.emplace(cache_key, resp);
  co_return rpc_.encode(resp);
}

sim::Task<Buffer> TccPartition::on_migrate_in(Buffer req, net::Address) {
  auto q = decode_message<TccMigrateInReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  TccMigrateInResp resp;
  if (q.epoch != join_epoch_) {
    resp.ok = false;
    co_return rpc_.encode(resp);
  }
  if (join_applied_.count(q.source) != 0) {
    // Duplicate parcel (retry of an acked apply): already installed.
    co_return rpc_.encode(resp);
  }
  join_applied_.insert(q.source);
  // Seed the clock above the source's sealed safe time and every migrated
  // version's timestamp: this partition must never mint a commit at or
  // below either (promise soundness + append-only chains).
  clock_.update(q.source_safe, physical_now_us());
  if (q.source_safe > handoff_floor_) handoff_floor_ = q.source_safe;
  // Merge the source's genuinely observed stabilization state; sentinels
  // (min = never seeded, max = unheard) carry no information.
  const size_t n = std::min(q.last_heard.size(), stabilizer_.num_partitions());
  for (size_t p = 0; p < n; ++p) {
    if (q.last_heard[p] == Timestamp::min()) continue;
    if (q.last_heard[p] == Timestamp::max()) continue;
    stabilizer_.on_gossip(static_cast<PartitionId>(p), q.last_heard[p]);
  }
  for (const auto& chain : q.chains) {
    if (acquiring_) acquired_keys_.push_back(chain.key);
    std::vector<MvStore::Version> versions;
    versions.reserve(chain.versions.size());
    for (const auto& v : chain.versions) {
      clock_.update(v.ts, physical_now_us());
      if (v.ts > handoff_floor_) handoff_floor_ = v.ts;
      versions.push_back(MvStore::Version{v.value, v.ts});
    }
    // No oracle->on_install here: the versions were recorded when the
    // source installed them; re-recording would false-flag duplicates.
    store_.migrate_in(chain.key, versions);
  }
  if (repl_role_ == ReplRole::kLeader && !q.chains.empty()) {
    // The inherited chains exist only at this leader — the replication
    // stream never carried them.  Re-sync every follower from the chain
    // head before it re-enters the seal quorum, or a failover after the
    // drain would lose writes the retired partition had acked durable.
    for (net::Address f : followers_) {
      if (std::find(followers_behind_.begin(), followers_behind_.end(), f) ==
          followers_behind_.end()) {
        followers_behind_.push_back(f);
      }
    }
    followers_.clear();
  }
  counters_.keys_migrated_in.inc(q.chains.size());
  if (metrics_ != nullptr) {
    metrics_->counter("routing.keys_migrated").inc(q.chains.size());
  }
  if (join_expected_ > 0 && join_applied_.size() >= join_expected_) {
    activate();
  }
  co_return rpc_.encode(resp);
}

// ---------------------------------------------------------------------------
// Per-slot replication (leader + k followers).
// ---------------------------------------------------------------------------

void TccPartition::set_followers(std::vector<net::Address> followers) {
  followers_ = std::move(followers);
  if (!followers_.empty()) repl_role_ = ReplRole::kLeader;
}

void TccPartition::make_follower(net::Address leader) {
  repl_role_ = ReplRole::kFollower;
  leader_addr_ = leader;
  // Not in the routing table, so clients never address us — but any stray
  // frame parks instead of serving from a store nobody sealed.
  serving_ = false;
}

void TccPartition::start_follower() {
  last_lease_beat_ = rpc_.now();
  sim::spawn(lease_loop());
}

Timestamp TccPartition::published_safe() {
  const Timestamp raw = safe_time();
  if (repl_role_ != ReplRole::kLeader) return raw;
  if (followers_.empty() && followers_behind_.empty()) return raw;
  // Seals piggyback the gossip beat (they double as lease renewals); the
  // published value trails the raw safe by a seal round-trip, which is
  // always sound — safe times are monotone, so a delayed safe is merely a
  // conservative one.
  if (!seal_inflight_) sim::spawn(seal_round(raw, repl_seq_));
  for (net::Address f : followers_behind_) {
    if (backfill_inflight_.insert(f).second) sim::spawn(backfill_one(f));
  }
  return sealed_pub_;
}

sim::Task<bool> TccPartition::repl_send_one(net::Address follower,
                                            TccReplInstallReq frame) {
  auto r = co_await rpc_.call_raw_sized_retry(follower, kTccReplInstall,
                                              rpc_.encode(frame),
                                              net::commit_retry_policy());
  const bool ok = r.ok();
  if (ok) rpc_.recycle(std::move(r.payload));
  co_return ok;
}

sim::Task<void> TccPartition::repl_send_quiet(net::Address follower,
                                              TccReplInstallReq frame) {
  co_await repl_send_one(follower, std::move(frame));
}

sim::Task<void> TccPartition::replicate_commit(TxnId txn, Timestamp commit_ts,
                                               std::vector<KeyValue> writes) {
  TccReplInstallReq frame;
  frame.txn = txn;
  frame.commit_ts = commit_ts;
  frame.seq = ++repl_seq_;
  frame.writes = std::move(writes);
  // Behind followers still get the frame best-effort (keeps the hole a
  // running backfill must close from growing), but never gate the ack.
  for (net::Address f : followers_behind_) {
    sim::spawn(repl_send_quiet(f, frame));
  }
  const std::vector<net::Address> targets = followers_;
  std::vector<sim::Task<bool>> calls;
  calls.reserve(targets.size());
  for (net::Address f : targets) calls.push_back(repl_send_one(f, frame));
  const std::vector<bool> acks =
      co_await sim::when_all(rpc_.loop(), std::move(calls));
  for (size_t i = 0; i < targets.size(); ++i) {
    if (acks[i]) continue;
    // Bounded retry exhausted: this follower's stream has a hole we will
    // not close by re-sending.  Demote it out of the seal quorum; a
    // backfill from the chain head re-syncs it on a later beat.
    auto it = std::find(followers_.begin(), followers_.end(), targets[i]);
    if (it != followers_.end()) followers_.erase(it);
    if (std::find(followers_behind_.begin(), followers_behind_.end(),
                  targets[i]) == followers_behind_.end()) {
      followers_behind_.push_back(targets[i]);
    }
  }
}

sim::Task<void> TccPartition::seal_round(Timestamp safe, uint64_t seq_high) {
  seal_inflight_ = true;
  // One attempt per beat: the next beat is the retry, and a follower that
  // momentarily trails (frames still in flight) simply withholds this
  // seal — it is NOT demoted; only stream-retry exhaustion demotes.
  const net::RetryPolicy once{1, milliseconds(1), milliseconds(1),
                              net::kUseDefaultTimeout};
  const std::vector<net::Address> targets = followers_;
  const TccReplSealReq req{safe, seq_high};
  std::vector<sim::Task<std::optional<TccReplSealResp>>> calls;
  calls.reserve(targets.size());
  for (net::Address f : targets) {
    calls.push_back(
        rpc_.call_with_retry<TccReplSealResp>(f, kTccReplSeal, req, once));
  }
  const auto resps = co_await sim::when_all(rpc_.loop(), std::move(calls));
  bool all_ok = !targets.empty();
  for (const auto& r : resps) {
    if (!r.has_value() || !r->ok) all_ok = false;
  }
  if (all_ok && safe > sealed_pub_) sealed_pub_ = safe;
  seal_inflight_ = false;
}

sim::Task<void> TccPartition::backfill_one(net::Address follower) {
  TccBackfillReq req;
  req.safe = safe_time();
  req.seq_high = repl_seq_;
  // Epoch fence: a parcel snapshotted before a contraction must not land
  // after it (it would resurrect chains the shrink drained away).  0 when
  // no table is installed — the receiver treats that as unfenced.
  req.epoch = table_ != nullptr ? table_->epoch : 0;
  req.resolved.reserve(resolved_order_.size());
  for (TxnId t : resolved_order_) {
    if (auto it = resolved_.find(t); it != resolved_.end()) {
      req.resolved.push_back(ResolvedTxn{t, it->second});
    }
  }
  const auto snap = store_.snapshot_chains();
  req.chains.reserve(snap.size());
  for (const auto& [key, versions] : snap) {
    MigratedChain c;
    c.key = key;
    c.versions.reserve(versions.size());
    for (const auto& v : versions) {
      c.versions.push_back(MigratedVersion{v.value, v.ts});
    }
    req.chains.push_back(std::move(c));
  }
  const uint64_t sent_seq_high = req.seq_high;
  const auto r = co_await rpc_.call_with_retry<TccBackfillResp>(
      follower, kTccBackfill, std::move(req), net::commit_retry_policy());
  backfill_inflight_.erase(follower);
  if (!r.has_value() || !r->ok) co_return;  // retried on a later beat
  if (repl_seq_ != sent_seq_high) {
    // Commits landed while the parcel was in flight; their frames went to
    // this follower only best-effort.  Stay behind and re-sync again — the
    // next parcel is a delta-sized copy of a mostly warm store.
    co_return;
  }
  auto it =
      std::find(followers_behind_.begin(), followers_behind_.end(), follower);
  if (it != followers_behind_.end()) followers_behind_.erase(it);
  if (std::find(followers_.begin(), followers_.end(), follower) ==
      followers_.end()) {
    followers_.push_back(follower);
  }
}

void TccPartition::apply_repl_frame(const TccReplInstallReq& q) {
  clock_.update(q.commit_ts, physical_now_us());
  for (const auto& kv : q.writes) {
    // No oracle->on_install: the leader recorded these installs when it
    // applied them; re-recording would false-flag duplicates (the
    // migrate-in precedent).
    store_.install(kv.key, kv.value, q.commit_ts);
  }
  if (q.commit_ts > repl_floor_) repl_floor_ = q.commit_ts;
  // Mirror the leader's dedup window so a promoted follower answers
  // coordinator commit retries exactly as the dead leader would have.
  remember_resolved(q.txn, q.commit_ts);
  counters_.repl_installs.inc();
}

sim::Task<Buffer> TccPartition::on_repl_install(Buffer req, net::Address) {
  auto q = decode_message<TccReplInstallReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  TccReplInstallResp resp;
  // At-most-once apply: a duplicated or re-sent frame (network dup, or the
  // best-effort stream overlapping a backfill) is acked without touching
  // the store.  Install and resolve are idempotent anyway; the seq window
  // keeps the counters honest.
  if (q.seq <= repl_applied_seq_ || repl_sparse_.count(q.seq) != 0) {
    counters_.repl_dup_frames.inc();
    co_return rpc_.encode(resp);
  }
  apply_repl_frame(q);
  if (q.seq == repl_applied_seq_ + 1) {
    ++repl_applied_seq_;
    auto it = repl_sparse_.begin();
    while (it != repl_sparse_.end() && *it == repl_applied_seq_ + 1) {
      ++repl_applied_seq_;
      it = repl_sparse_.erase(it);
    }
  } else {
    repl_sparse_.insert(q.seq);
  }
  co_return rpc_.encode(resp);
}

sim::Task<Buffer> TccPartition::on_repl_seal(Buffer req, net::Address from) {
  auto q = decode_message<TccReplSealReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  last_lease_beat_ = rpc_.now();
  leader_addr_ = from;
  lag_grace_used_ = false;
  if (q.seq_high > leader_seq_high_) leader_seq_high_ = q.seq_high;
  TccReplSealResp resp;
  resp.applied_seq = repl_applied_seq_;
  resp.ok = repl_applied_seq_ >= q.seq_high;
  if (resp.ok && q.safe > sealed_safe_) {
    sealed_safe_ = q.safe;
    counters_.repl_seals.inc();
  }
  co_return rpc_.encode(resp);
}

sim::Task<Buffer> TccPartition::on_backfill(Buffer req, net::Address from) {
  auto q = decode_message<TccBackfillReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  if (q.epoch != 0 && table_ != nullptr && q.epoch < table_->epoch) {
    // Fenced: the sender snapshotted its store under an epoch this node has
    // moved past — across a contraction the parcel may hold chains that
    // were drained to a survivor, and applying it would resurrect them.
    TccBackfillResp stale;
    stale.ok = false;
    co_return rpc_.encode(stale);
  }
  last_lease_beat_ = rpc_.now();
  leader_addr_ = from;
  lag_grace_used_ = false;
  for (const auto& chain : q.chains) {
    std::vector<MvStore::Version> versions;
    versions.reserve(chain.versions.size());
    for (const auto& v : chain.versions) {
      clock_.update(v.ts, physical_now_us());
      if (v.ts > repl_floor_) repl_floor_ = v.ts;
      versions.push_back(MvStore::Version{v.value, v.ts});
    }
    // Idempotent per (key, ts): a duplicated backfill grows no twins.
    store_.migrate_in(chain.key, versions);
  }
  for (const auto& t : q.resolved) remember_resolved(t.txn, t.ts);
  if (q.seq_high > repl_applied_seq_) repl_applied_seq_ = q.seq_high;
  while (!repl_sparse_.empty() &&
         *repl_sparse_.begin() <= repl_applied_seq_) {
    repl_sparse_.erase(repl_sparse_.begin());
  }
  auto it = repl_sparse_.begin();
  while (it != repl_sparse_.end() && *it == repl_applied_seq_ + 1) {
    ++repl_applied_seq_;
    it = repl_sparse_.erase(it);
  }
  clock_.update(q.safe, physical_now_us());
  if (q.safe > sealed_safe_) sealed_safe_ = q.safe;
  counters_.repl_backfills.inc();
  TccBackfillResp resp;
  co_return rpc_.encode(resp);
}

sim::Task<void> TccPartition::lease_loop() {
  const uint64_t gen = loop_gen_;
  Duration beat = params_.repl_lease_timeout / 4;
  if (beat <= 0) beat = milliseconds(1);
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), beat);
    // A follower retired with its leader must stop bidding for promotion:
    // the topology service would refuse the bid anyway (the partition id
    // is beyond the shrunk table), but a retired bidder looping on refused
    // promotions is wasted traffic forever.
    if (retired_ || gen != loop_gen_) co_return;
    if (repl_role_ != ReplRole::kFollower) co_return;  // promoted
    if (rpc_.now() - last_lease_beat_ < params_.repl_lease_timeout) continue;
    if (topo_service_ == 0 || table_ == nullptr) continue;
    if (repl_applied_seq_ < leader_seq_high_ && !lag_grace_used_) {
      // We know we are missing frames.  Give an in-flight backfill — or a
      // caught-up sibling's bid — one grace period before bidding anyway
      // (a lagging promotion is still better than an abandoned slot).
      lag_grace_used_ = true;
      last_lease_beat_ = rpc_.now();
      continue;
    }
    const routing::TopoPromoteReq bid{
        id_, static_cast<routing::PartitionAddress>(rpc_.address()),
        table_->epoch};
    auto resp = co_await rpc_.call_raw_retry(topo_service_,
                                             routing::kTopoPromote,
                                             rpc_.encode(bid),
                                             net::routing_refresh_policy());
    if (resp.has_value()) {
      auto t = decode_message<routing::RoutingTable>(*resp);
      rpc_.recycle(std::move(*resp));
      set_routing(routing::make_table(std::move(t)));
    }
    if (repl_role_ != ReplRole::kFollower) co_return;  // we won
    // Lost the race (or the bid was stale): the adopted table names the
    // current leader; treat the decision itself as a lease renewal.
    if (table_ != nullptr && id_ < table_->partitions.size()) {
      leader_addr_ = table_->partitions[id_];
    }
    last_lease_beat_ = rpc_.now();
    lag_grace_used_ = false;
  }
}

void TccPartition::promote_self() {
  if (repl_role_ != ReplRole::kFollower) return;
  repl_role_ = ReplRole::kLeader;
  counters_.promotions.inc();
  // Handoff floor: the dead leader only ever published safe times it had
  // sealed here first, so every promise it issued is <= sealed_safe_ —
  // exactly the elastic scale-out argument with the seal standing in for
  // the migrate-out's explicit sealing step.
  if (sealed_safe_ > handoff_floor_) handoff_floor_ = sealed_safe_;
  // Never mint a commit at or below anything sealed or replicated here.
  clock_.update(std::max(sealed_safe_, repl_floor_), physical_now_us());
  // Conservative broadcaster/listener re-sync: every surviving sibling
  // re-syncs from our chain head before rejoining the seal quorum (we
  // cannot know which of the dead leader's frames they saw).
  followers_.clear();
  followers_behind_.clear();
  if (table_ != nullptr) {
    for (routing::PartitionAddress f : table_->replicas_of(id_)) {
      if (f != rpc_.address()) followers_behind_.push_back(f);
    }
  }
  // Sound: the dead leader never published past what EVERY caught-up
  // follower sealed, and we sealed everything we report here.
  sealed_pub_ = sealed_safe_;
  if (leader_seq_high_ > repl_seq_) repl_seq_ = leader_seq_high_;
  if (repl_applied_seq_ > repl_seq_) repl_seq_ = repl_applied_seq_;
  if (oracle_ != nullptr) {
    std::vector<std::pair<Key, Timestamp>> surviving;
    for (const auto& [key, chain] : store_.snapshot_chains()) {
      for (const auto& v : chain) surviving.emplace_back(key, v.ts);
    }
    oracle_->on_failover(id_, surviving);
  }
  if (metrics_ != nullptr) metrics_->counter("repl.promotions").inc();
  activate();
}

sim::Task<void> TccPartition::gc_loop() {
  const uint64_t gen = loop_gen_;
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.gc_period);
    if (retired_ || gen != loop_gen_) co_return;
    const Timestamp stable = stabilizer_.stable_time();
    const uint64_t window_us =
        static_cast<uint64_t>(params_.gc_window);
    if (stable.physical_us() <= window_us) continue;
    const Timestamp horizon(stable.physical_us() - window_us, 0, 0);
    counters_.versions_gced.inc(store_.gc_before(horizon));
  }
}

}  // namespace faastcc::storage
