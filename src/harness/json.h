// Minimal JSON reader/writer for the harness surface: run specs, sweep
// plans and merged sweep artifacts.
//
// Reading: a strict recursive-descent parser into a Value tree.  Numbers
// keep their raw source token so 64-bit integers (seeds, capacities) round
// trip without passing through a double.  Parse errors throw ParseError
// with a byte offset.
//
// Writing: a Writer that emits a fixed field order with deterministic
// number formatting — integers in decimal, doubles via "%.17g" (exact
// round trip).  Everything downstream (RunSpec encoding, sweep merges)
// depends on this determinism: two processes serializing the same data
// must produce identical bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace faastcc::harness::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  std::string text;  // kNumber: raw token; kString: decoded contents
  std::vector<Value> items;                           // kArray
  std::vector<std::pair<std::string, Value>> fields;  // kObject (in order)

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  // nullptr when absent (object lookups never throw).
  const Value* find(std::string_view key) const;

  // Typed accessors; throw ParseError(offset 0) on type mismatch or on a
  // numeric token that does not fit the requested type.
  bool as_bool() const;
  int64_t as_i64() const;
  uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const;
};

// Parses exactly one JSON document (trailing garbage is an error).
Value parse(std::string_view text);

// Deterministic writer.  The caller drives structure explicitly:
//   Writer w;
//   w.begin_object(); w.key("seed"); w.u64(42); w.end_object();
// Indentation is two spaces; `compact` suppresses all whitespace.
class Writer {
 public:
  explicit Writer(bool compact = false) : compact_(compact) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void string(std::string_view s);
  void boolean(bool b);
  void u64(uint64_t v);
  void i64(int64_t v);
  void number(double v);      // %.17g: shortest form is not guaranteed,
                              // exact round trip is
  void raw(std::string_view token);  // pre-formatted (e.g. a number token)
  void null();

  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void separate();  // comma/newline/indent before a new element
  void indent();

  std::string out_;
  bool compact_ = false;
  // Per-depth element count; depth 0 is the document root.
  std::vector<size_t> counts_{0};
  bool pending_key_ = false;
};

// Serializes a parsed Value back to text in canonical Writer formatting
// (object field order preserved, numbers re-emitted from their raw token).
std::string to_text(const Value& v, bool compact = false);

// Escapes a string for direct inclusion in hand-built JSON.
std::string escape(std::string_view s);

}  // namespace faastcc::harness::json
