# Empty compiler generated dependencies file for bench_fig8_cache_bytes.
# This may be replaced when dependencies are built.
