
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hlc.cc" "src/CMakeFiles/faastcc_common.dir/common/hlc.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/hlc.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/faastcc_common.dir/common/log.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/faastcc_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/faastcc_common.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/faastcc_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/faastcc_common.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/faastcc_common.dir/common/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
