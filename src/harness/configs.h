// Named run configurations: one source of truth for "--config=<name>".
//
// The table started life inside tcc_fuzz; now the sim, the fuzzer, the
// sweep runner and the bench binaries all resolve the same names to the
// same ClusterParams mutations, and --list-configs prints the same table
// everywhere.  Regression ("chaos") configs re-enable one historical bug
// via its chaos knob; they are excluded from default fuzz sweeps (they are
// SUPPOSED to fail) and run only when named explicitly.
#pragma once

#include <cstdio>
#include <string_view>
#include <vector>

#include "harness/cluster.h"

namespace faastcc::harness {

struct NamedConfig {
  const char* name;
  const char* what;
  bool chaos;  // regression config: re-enables a historical bug
  void (*apply)(ClusterParams&);
};

// All registered configs, in stable listing order.
const std::vector<NamedConfig>& all_configs();

// nullptr when no config has that name.
const NamedConfig* find_config(std::string_view name);

// `--list-configs` output, identical across binaries.
void list_configs(std::FILE* out);

// The fuzzer's seed-rotated workload shapes (short chains / deep chains /
// static hot-key transactions), shared so a parallel sweep reproduces the
// serial fuzzer's runs exactly.
void apply_fuzz_shape(ClusterParams& p, uint64_t seed);

}  // namespace faastcc::harness
