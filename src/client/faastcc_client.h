// The FaaSTCC client library (paper §4.4-§4.8, Alg. 1).
//
// Keeps the DAG context — snapshot interval, write set and causal lower
// bound — plus the per-function read set.  Reads go through the node's
// FaaSTCC cache; the snapshot interval narrows with every accepted
// version; the sink commits the write set to the TCC storage layer.
#pragma once

#include <map>
#include <unordered_map>

#include "cache/cache_messages.h"
#include "check/oracle.h"
#include "client/snapshot_interval.h"
#include "client/txn.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::client {

struct FaasTccConfig {
  // Fig. 3 ablation switches.  The full system uses both.
  bool use_promises = true;
  // When false, the first read fixes a single snapshot for the rest of
  // the DAG instead of keeping a lazily narrowed interval.
  bool use_interval = true;
  // §7 extension: Snapshot Isolation.  Commits run first-committer-wins
  // write-write conflict detection against the transaction's read
  // snapshot (interval.high); a conflicting DAG aborts and is retried by
  // the client.  Lost updates on read-modify-write cycles become
  // impossible; the price is the conflict-abort rate under contention.
  bool snapshot_isolation = false;
  // Topology-service endpoint (0 = static routing).  When set, the
  // adapter's commit client can pull a fresh routing table after a
  // wrong-epoch NACK or a newer epoch carried in by the DAG context.
  net::Address topo_service = 0;
  // Chaos knob (tests/fuzzer only): skip the library-local write-set and
  // read-set lookups so every read goes to the cache, violating
  // read-your-writes and repeatable reads for the oracle to catch.
  bool chaos_skip_local_reads = false;
};

// Context passed from function to function: Alg. 1's `context`.
// The wire encoding is versioned: a leading version byte guards against
// silent misparsing when future fields are added; decode throws CodecError
// on a version it does not understand.
struct FaasTccContext {
  static constexpr uint8_t kWireVersion = 1;
  // Version 2 prepends the routing epoch observed by the DAG so far.  It
  // is emitted only once a bump has actually been observed (epoch > 1):
  // runs that never scale out ship byte-identical v1 contexts, keeping
  // schedules and the metadata-bytes metric unchanged.
  static constexpr uint8_t kWireVersionEpoch = 2;

  SnapshotInterval interval;
  Timestamp dep_ts = Timestamp::min();  // session/write causal lower bound
  bool snapshot_fixed = false;          // fixed-snapshot ablation state
  std::map<Key, Value> write_set;       // ordered => deterministic encoding
  // Newest routing epoch any function in the DAG observed from its cache
  // (0 = none observed / pre-elastic).  The sink compares it against its
  // commit client's table and refreshes before committing, instead of
  // burning a guaranteed wrong-epoch NACK round.
  uint32_t routing_epoch = 0;

  template <typename W>
  void encode(W& w) const {
    if (routing_epoch > 1) {
      w.put_u8(kWireVersionEpoch);
      w.put_u32(routing_epoch);
    } else {
      w.put_u8(kWireVersion);
    }
    interval.encode(w);
    w.put_u64(dep_ts.raw());
    w.put_bool(snapshot_fixed);
    w.put_u32(static_cast<uint32_t>(write_set.size()));
    for (const auto& [k, v] : write_set) {
      w.put_u64(k);
      w.put_bytes(v);
    }
  }
  static FaasTccContext decode(BufReader& r);
};

class FaasTccAdapter final : public SystemAdapter {
 public:
  FaasTccAdapter(net::RpcNode& rpc, net::Address cache_address,
                 storage::TccTopology topology, FaasTccConfig config,
                 Metrics* metrics, obs::Tracer* tracer = nullptr,
                 check::ConsistencyOracle* oracle = nullptr);

  std::unique_ptr<FunctionTxn> open(const TxnInfo& info,
                                    std::vector<Payload> parent_contexts,
                                    Payload session) override;

 private:
  friend class FaasTccTxn;
  net::RpcNode& rpc_;
  net::Address cache_address_;
  storage::TccStorageClient storage_;
  FaasTccConfig config_;
  Metrics* metrics_;
  obs::Tracer* tracer_;
  check::ConsistencyOracle* oracle_;
};

class FaasTccTxn final : public FunctionTxn {
 public:
  FaasTccTxn(FaasTccAdapter& adapter, TxnInfo info, FaasTccContext context)
      : adapter_(adapter),
        info_(std::move(info)),
        ctx_(std::move(context)),
        fn_id_(adapter.oracle_ != nullptr
                   ? adapter.oracle_->register_function(info_.txn_id)
                   : 0) {}

  sim::Task<std::optional<std::vector<Value>>> read(
      std::vector<Key> keys) override;
  void write(Key k, Value v) override;
  Buffer export_context() const override;
  size_t metadata_bytes() const override;
  sim::Task<std::optional<Buffer>> commit() override;

  const SnapshotInterval& interval() const { return ctx_.interval; }

 private:
  FaasTccAdapter& adapter_;
  TxnInfo info_;
  FaasTccContext ctx_;
  // Deterministic per-function id for the oracle's read-your-writes /
  // repeatable-reads bookkeeping (0 when no oracle is attached).
  uint64_t fn_id_;
  // Library-local copy of values read while executing on this worker
  // (Alg. 1 line 16); not part of the shipped context.
  std::unordered_map<Key, Value> read_set_;
};

// Session blob: the commit timestamp of the client's previous transaction
// (write-after-write session ordering).
Buffer encode_faastcc_session(Timestamp commit_ts);
Timestamp decode_faastcc_session(const Buffer& b);
Timestamp decode_faastcc_session(const Payload& p);

}  // namespace faastcc::client
