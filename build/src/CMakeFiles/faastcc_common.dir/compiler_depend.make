# Empty compiler generated dependencies file for faastcc_common.
# This may be replaced when dependencies are built.
