#include "cache/lru_index.h"

namespace faastcc::cache {

void LruIndex::touch(Key k) {
  auto it = index_.find(k);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(k);
  index_.emplace(k, order_.begin());
}

void LruIndex::erase(Key k) {
  auto it = index_.find(k);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<Key> LruIndex::least_recent() const {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

}  // namespace faastcc::cache
