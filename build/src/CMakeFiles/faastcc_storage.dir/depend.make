# Empty dependencies file for faastcc_storage.
# This may be replaced when dependencies are built.
