
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/faastcc_cache.cc" "src/CMakeFiles/faastcc_cache.dir/cache/faastcc_cache.cc.o" "gcc" "src/CMakeFiles/faastcc_cache.dir/cache/faastcc_cache.cc.o.d"
  "/root/repo/src/cache/hydro_cache.cc" "src/CMakeFiles/faastcc_cache.dir/cache/hydro_cache.cc.o" "gcc" "src/CMakeFiles/faastcc_cache.dir/cache/hydro_cache.cc.o.d"
  "/root/repo/src/cache/hydro_types.cc" "src/CMakeFiles/faastcc_cache.dir/cache/hydro_types.cc.o" "gcc" "src/CMakeFiles/faastcc_cache.dir/cache/hydro_types.cc.o.d"
  "/root/repo/src/cache/lru_index.cc" "src/CMakeFiles/faastcc_cache.dir/cache/lru_index.cc.o" "gcc" "src/CMakeFiles/faastcc_cache.dir/cache/lru_index.cc.o.d"
  "/root/repo/src/cache/plain_cache.cc" "src/CMakeFiles/faastcc_cache.dir/cache/plain_cache.cc.o" "gcc" "src/CMakeFiles/faastcc_cache.dir/cache/plain_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faastcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_client_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
