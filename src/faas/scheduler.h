// The function scheduler: receives DAG execution requests from clients,
// places every function on a compute node, and fires the root trigger.
// The paper's design is agnostic to the placement heuristic (§3.2); we
// provide uniform-random and round-robin placement.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "faas/messages.h"
#include "net/rpc.h"
#include "obs/trace.h"

namespace faastcc::faas {

struct SchedulerParams {
  Duration service_time = microseconds(150);
  bool round_robin = false;  // default: uniform random placement
};

class Scheduler {
 public:
  Scheduler(net::Network& network, net::Address self,
            std::vector<net::Address> nodes, SchedulerParams params, Rng rng,
            obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }
  uint64_t dags_started() const { return dags_started_.value(); }

 private:
  void on_start(Buffer msg, net::Address from);
  sim::Task<void> dispatch(StartDagMsg start, obs::TraceContext trace);

  net::RpcNode rpc_;
  std::vector<net::Address> nodes_;
  SchedulerParams params_;
  Rng rng_;
  obs::Tracer* tracer_;
  size_t next_node_ = 0;
  Counter dags_started_;
};

}  // namespace faastcc::faas
