#include "common/metrics.h"

namespace faastcc {
namespace {

// Well-known names, resolved to the typed members so both access styles
// share storage.  Table order defines the iteration order.
struct CounterDesc {
  const char* name;
  Counter Metrics::*member;
};

constexpr CounterDesc kCounters[] = {
    {"dag.attempts", &Metrics::dag_attempts},
    {"dag.commits", &Metrics::dag_commits},
    {"dag.aborts", &Metrics::dag_aborts},
    {"dag.timeouts", &Metrics::dag_timeouts},
    {"cache.lookups", &Metrics::cache_lookups},
    {"cache.hits", &Metrics::cache_hits},
    {"storage.episodes", &Metrics::storage_episodes},
};

struct HistogramDesc {
  const char* name;
  Samples Metrics::*member;
};

constexpr HistogramDesc kHistograms[] = {
    {"dag.latency_ms", &Metrics::dag_latency_ms},
    {"dag.aborted_latency_ms", &Metrics::aborted_latency_ms},
    {"dag.metadata_bytes", &Metrics::metadata_bytes},
    {"storage.rounds", &Metrics::storage_rounds},
    {"storage.read_bytes", &Metrics::storage_read_bytes},
};

}  // namespace

Counter& Metrics::counter(std::string_view name) {
  for (const auto& d : kCounters) {
    if (name == d.name) return this->*(d.member);
  }
  for (auto& [n, c] : dynamic_counters_) {
    if (name == n) return c;
  }
  dynamic_counters_.emplace_back(std::string(name), Counter{});
  return dynamic_counters_.back().second;
}

Samples& Metrics::histogram(std::string_view name) {
  for (const auto& d : kHistograms) {
    if (name == d.name) return this->*(d.member);
  }
  for (auto& [n, h] : dynamic_histograms_) {
    if (name == n) return h;
  }
  dynamic_histograms_.emplace_back(std::string(name), Samples{});
  return dynamic_histograms_.back().second;
}

const Counter* Metrics::find_counter(std::string_view name) const {
  for (const auto& d : kCounters) {
    if (name == d.name) return &(this->*(d.member));
  }
  for (const auto& [n, c] : dynamic_counters_) {
    if (name == n) return &c;
  }
  return nullptr;
}

const Samples* Metrics::find_histogram(std::string_view name) const {
  for (const auto& d : kHistograms) {
    if (name == d.name) return &(this->*(d.member));
  }
  for (const auto& [n, h] : dynamic_histograms_) {
    if (name == n) return &h;
  }
  return nullptr;
}

void Metrics::each_counter(
    const std::function<void(const char*, const Counter&)>& fn) const {
  for (const auto& d : kCounters) fn(d.name, this->*(d.member));
  for (const auto& [n, c] : dynamic_counters_) fn(n.c_str(), c);
}

void Metrics::each_histogram(
    const std::function<void(const char*, const Samples&)>& fn) const {
  for (const auto& d : kHistograms) fn(d.name, this->*(d.member));
  for (const auto& [n, h] : dynamic_histograms_) fn(n.c_str(), h);
}

}  // namespace faastcc
