// Wire messages between client libraries (running in function executors)
// and the per-node cache services.  These travel over same-node IPC.
#pragma once

#include <cstdint>
#include <vector>

#include "client/snapshot_interval.h"
#include "cache/hydro_types.h"
#include "common/serialize.h"
#include "storage/messages.h"

namespace faastcc::cache {

enum CacheMethod : uint16_t {
  kCacheRead = 40,  // FaaSTCC promise-aware cache
  kHydroRead = 41,  // HydroCache causal cache
  kPlainRead = 42,  // Cloudburst eventual cache
};

// ---------------------------------------------------------------------------
// FaaSTCC cache (Alg. 2).
// ---------------------------------------------------------------------------

struct CacheReadReq {
  client::SnapshotInterval interval;
  bool use_promises = true;  // Fig. 3 ablation: off => a cached version is
                             // admissible only if its own timestamp lies in
                             // the interval.
  std::vector<Key> keys;

  template <typename W>
  void encode(W& w) const {
    interval.encode(w);
    w.put_bool(use_promises);
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
  }
  static CacheReadReq decode(BufReader& r) {
    CacheReadReq q;
    q.interval = client::SnapshotInterval::decode(r);
    q.use_promises = r.get_bool();
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.keys.push_back(r.get_u64());
    return q;
  }
};

struct CacheReadResp {
  bool abort = false;
  client::SnapshotInterval interval;  // narrowed by the accepted versions
  std::vector<storage::VersionedValue> entries;  // parallel to request keys
  std::vector<bool> from_cache;                  // parallel to entries

  template <typename W>
  void encode(W& w) const {
    w.put_bool(abort);
    interval.encode(w);
    storage::put_vec(w, entries);
    w.put_u32(static_cast<uint32_t>(from_cache.size()));
    for (bool b : from_cache) w.put_bool(b);
  }
  static CacheReadResp decode(BufReader& r) {
    CacheReadResp resp;
    resp.abort = r.get_bool();
    resp.interval = client::SnapshotInterval::decode(r);
    resp.entries = storage::get_vec<storage::VersionedValue>(r);
    const uint32_t n = r.get_u32();
    resp.from_cache.reserve(n);
    for (uint32_t i = 0; i < n; ++i) resp.from_cache.push_back(r.get_bool());
    return resp;
  }
};

// ---------------------------------------------------------------------------
// HydroCache.
// ---------------------------------------------------------------------------

struct HydroReadReq {
  std::vector<Key> keys;
  DepMap context;  // the transaction's accumulated causal requirements

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
    context.encode(w);
  }
  static HydroReadReq decode(BufReader& r) {
    HydroReadReq q;
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.keys.push_back(r.get_u64());
    q.context = DepMap::decode(r);
    return q;
  }
};

struct HydroReadEntry {
  Key key = 0;
  Value value;
  uint64_t counter = 0;
  SimTime written_at = 0;
  DepList deps;  // merged into the txn context by the client; shared, not
                 // copied, with the cache entry it came from

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_bytes(value);
    w.put_u64(counter);
    w.put_i64(written_at);
    deps.encode(w);
  }
  static HydroReadEntry decode(BufReader& r) {
    HydroReadEntry e;
    e.key = r.get_u64();
    e.value = r.get_bytes();
    e.counter = r.get_u64();
    e.written_at = r.get_i64();
    e.deps = DepList::decode(r);
    return e;
  }
};

struct HydroReadResp {
  bool abort = false;
  std::vector<HydroReadEntry> entries;  // parallel to request keys
  std::vector<bool> from_cache;
  SimTime global_cut = 0;  // latest dependency-GC watermark seen

  template <typename W>
  void encode(W& w) const {
    w.put_bool(abort);
    storage::put_vec(w, entries);
    w.put_u32(static_cast<uint32_t>(from_cache.size()));
    for (bool b : from_cache) w.put_bool(b);
    w.put_i64(global_cut);
  }
  static HydroReadResp decode(BufReader& r) {
    HydroReadResp resp;
    resp.abort = r.get_bool();
    resp.entries = storage::get_vec<HydroReadEntry>(r);
    const uint32_t n = r.get_u32();
    resp.from_cache.reserve(n);
    for (uint32_t i = 0; i < n; ++i) resp.from_cache.push_back(r.get_bool());
    resp.global_cut = r.get_i64();
    return resp;
  }
};

// ---------------------------------------------------------------------------
// Plain (Cloudburst, eventual consistency) cache.
// ---------------------------------------------------------------------------

struct PlainReadReq {
  std::vector<Key> keys;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
  }
  static PlainReadReq decode(BufReader& r) {
    PlainReadReq q;
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.keys.push_back(r.get_u64());
    return q;
  }
};

struct PlainReadResp {
  // Set when a storage replica stayed unreachable through the retry
  // budget; the affected entries hold empty values the client must not
  // trust.
  bool abort = false;
  std::vector<storage::KeyValue> entries;  // parallel to request keys

  template <typename W>
  void encode(W& w) const {
    w.put_bool(abort);
    storage::put_vec(w, entries);
  }
  static PlainReadResp decode(BufReader& r) {
    PlainReadResp resp;
    resp.abort = r.get_bool();
    resp.entries = storage::get_vec<storage::KeyValue>(r);
    return resp;
  }
};

}  // namespace faastcc::cache
