file(REMOVE_RECURSE
  "CMakeFiles/faastcc_client_base.dir/client/snapshot_interval.cc.o"
  "CMakeFiles/faastcc_client_base.dir/client/snapshot_interval.cc.o.d"
  "libfaastcc_client_base.a"
  "libfaastcc_client_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_client_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
