#include "workload/client_driver.h"

#include "client/faastcc_client.h"
#include "common/log.h"
#include "sim/future.h"

namespace faastcc::workload {

ClientDriver::ClientDriver(net::Network& network, net::Address self,
                           net::Address scheduler, WorkloadGen workload,
                           ClientParams params, Metrics* metrics,
                           obs::Tracer* tracer,
                           check::ConsistencyOracle* oracle)
    : rpc_(network, self),
      scheduler_(scheduler),
      workload_(std::move(workload)),
      params_(params),
      metrics_(metrics),
      tracer_(tracer),
      oracle_(oracle),
      next_txn_((params.client_id + 1) << 32) {
  rpc_.handle_oneway(faas::kDagDone, [this](Buffer b, net::Address from) {
    on_done(std::move(b), from);
  });
}

void ClientDriver::on_done(Buffer msg, net::Address) {
  faas::DagDoneMsg done = decode_message<faas::DagDoneMsg>(msg);
  auto it = pending_.find(done.txn_id);
  if (it == pending_.end()) {
    // Expected under faults: a duplicated completion, or the real one
    // arriving after the DAG watchdog already gave up on the attempt.
    LOG_DEBUG("client got completion for unknown txn " << done.txn_id);
    return;
  }
  auto promise = std::move(it->second);
  pending_.erase(it);
  promise.set_value(std::move(done));
}

void ClientDriver::record_breakdown(const obs::TraceBreakdown& b) {
  if (metrics_ == nullptr) return;
  metrics_->histogram("breakdown.queue_ms").add(to_millis(b.queue));
  metrics_->histogram("breakdown.compute_ms").add(to_millis(b.compute));
  metrics_->histogram("breakdown.storage_ms").add(to_millis(b.storage));
  metrics_->histogram("breakdown.network_ms").add(to_millis(b.network));
}

sim::Task<faas::DagDoneMsg> ClientDriver::execute_once(
    const faas::DagSpec& spec, int attempt) {
  const TxnId txn = next_txn_++;
  auto [it, inserted] =
      pending_.emplace(txn, sim::Promise<faas::DagDoneMsg>(rpc_.loop()));
  auto future = it->second.get_future();
  // Each attempt is its own trace: fresh transaction, fresh span tree.
  obs::SpanHandle root;
  if (tracer_ != nullptr) {
    tracer_->start_trace(txn, rpc_.now());
    root = tracer_->begin(obs::TraceContext{txn, 0}, "dag", "client",
                          rpc_.address(), rpc_.now());
    tracer_->annotate(root, "attempt", static_cast<uint64_t>(attempt));
  }
  faas::StartDagMsg start;
  start.txn_id = txn;
  start.client = rpc_.address();
  start.session = session_;
  start.spec = spec;
  rpc_.send(scheduler_, faas::kStartDag, start,
            tracer_ != nullptr ? tracer_->context_of(root)
                               : obs::TraceContext{});
  if (params_.dag_timeout > 0) {
    rpc_.loop().schedule_after(params_.dag_timeout, [this, txn] {
      auto it2 = pending_.find(txn);
      if (it2 == pending_.end()) return;  // already completed
      auto promise = std::move(it2->second);
      pending_.erase(it2);
      if (metrics_ != nullptr) metrics_->dag_timeouts.inc();
      faas::DagDoneMsg timed_out;
      timed_out.txn_id = txn;
      timed_out.committed = false;
      promise.set_value(std::move(timed_out));
    });
  }
  faas::DagDoneMsg done = co_await std::move(future);
  if (tracer_ != nullptr) {
    tracer_->annotate(root, "committed", done.committed ? 1 : 0);
    tracer_->end(root, rpc_.now());
    auto breakdown = tracer_->finish_trace(txn, rpc_.now());
    // Breakdown histograms follow the committed-latency population.
    if (breakdown.has_value() && done.committed) {
      record_breakdown(*breakdown);
    }
  }
  co_return done;
}

sim::Task<void> ClientDriver::run() {
  started_at_ = rpc_.now();
  for (int i = 0; i < params_.num_dags; ++i) {
    // Load shaping: a shaped workload pauses the closed loop according to
    // the pattern's think time at this instant.  Zero for the unshaped
    // (historical) workload — no sleep, no event, bit-identical schedules.
    const Duration think = workload_.think_time_at(rpc_.now());
    if (think > Duration{0}) co_await sim::sleep_for(rpc_.loop(), think);
    const faas::DagSpec spec = workload_.next_dag(rpc_.now());
    for (int attempt = 0; attempt <= params_.max_retries; ++attempt) {
      const SimTime t0 = rpc_.now();
      if (metrics_ != nullptr) metrics_->dag_attempts.inc();
      faas::DagDoneMsg done = co_await execute_once(spec, attempt);
      const double latency_ms = to_millis(rpc_.now() - t0);
      if (done.committed) {
        committed_.inc();
        if (oracle_ != nullptr) {
          // Oracle runs are FaaSTCC-only, so the session blob is the
          // FaaSTCC encoding (the previous commit's timestamp).
          oracle_->on_session_commit(
              params_.client_id, client::decode_faastcc_session(done.session));
        }
        session_ = std::move(done.session);
        if (metrics_ != nullptr) {
          metrics_->dag_commits.inc();
          metrics_->dag_latency_ms.add(latency_ms);
        }
        break;
      }
      aborted_attempts_.inc();
      if (metrics_ != nullptr) {
        metrics_->dag_aborts.inc();
        metrics_->aborted_latency_ms.add(latency_ms);
      }
    }
  }
  finished_at_ = rpc_.now();
  done_ = true;
}

}  // namespace faastcc::workload
