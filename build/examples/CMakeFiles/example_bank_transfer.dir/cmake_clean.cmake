file(REMOVE_RECURSE
  "CMakeFiles/example_bank_transfer.dir/bank_transfer.cpp.o"
  "CMakeFiles/example_bank_transfer.dir/bank_transfer.cpp.o.d"
  "example_bank_transfer"
  "example_bank_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bank_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
