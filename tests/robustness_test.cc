// Robustness / fault-injection tests: the protocols must stay correct (if
// slower) under clock skew, straggling partitions and aggressive version
// GC.  Correctness is checked with the paired-write invariant: keys 2i and
// 2i+1 are always written together; reading them in different functions
// must never observe a torn pair.
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

struct PairOutcome {
  int checks = 0;
  int torn = 0;
  int committed = 0;
  int completed = 0;
};

// Runs interleaved pair-writers and two-hop pair-checkers on the given
// cluster parameters.
PairOutcome run_pair_workload(ClusterParams params, int rounds = 80) {
  params.clients = 0;
  params.workload.num_keys = 32;
  Cluster cluster(std::move(params));
  PairOutcome out;

  cluster.registry().register_function(
      "pw", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        const uint64_t tag = r.get_u64();
        env.txn.write(pair * 2, std::to_string(tag));
        env.txn.write(pair * 2 + 1, std::to_string(tag));
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "pr_even", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        auto vals = co_await env.txn.read(std::vector<Key>(1, pair * 2));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufWriter w;
        w.put_bytes((*vals)[0]);
        co_return w.take();
      });
  cluster.registry().register_function(
      "pr_odd", [&out](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader ar(env.args);
        const Key pair = ar.get_u64();
        auto vals = co_await env.txn.read(std::vector<Key>(1, pair * 2 + 1));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufReader pr(env.parent_result);
        ++out.checks;
        if (pr.get_bytes() != (*vals)[0]) ++out.torn;
        co_return Buffer{};
      });

  cluster.start();
  net::RpcNode driver(cluster.network(), 900);
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    ++out.completed;
    if (decode_message<faas::DagDoneMsg>(b).committed) ++out.committed;
  });
  Rng rng(5);
  for (int i = 0; i < rounds; ++i) {
    cluster.loop().schedule_after(i * milliseconds(2), [&, i] {
      faas::StartDagMsg start;
      start.txn_id = static_cast<TxnId>(i + 1);
      start.client = 900;
      BufWriter args;
      args.put_u64(rng.next_below(8));
      args.put_u64(static_cast<uint64_t>(i + 1));
      faas::FunctionSpec f1;
      faas::FunctionSpec f2;
      if (i % 2 == 0) {
        f1.name = "pw";
        f1.args = args.take();
        start.spec = faas::DagSpec::chain({f1});
      } else {
        f1.name = "pr_even";
        f1.args = args.take();
        f2.name = "pr_odd";
        f2.args = f1.args;
        start.spec = faas::DagSpec::chain({f1, f2});
      }
      driver.send(cluster.scheduler_address(), faas::kStartDag, start);
    });
  }
  while (out.completed < rounds && cluster.loop().now() < seconds(120)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(10));
  }
  EXPECT_EQ(out.completed, rounds);
  return out;
}

ClusterParams base() {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.partitions = 4;
  p.compute_nodes = 4;
  return p;
}

// ---------------------------------------------------------------------------
// Clock skew: hybrid logical clocks absorb bounded physical skew.
// ---------------------------------------------------------------------------

class ClockSkewSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ClockSkewSweep, PairInvariantHoldsUnderSkew) {
  ClusterParams p = base();
  p.clock_skew_us = GetParam();
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_GT(out.checks, 0);
  EXPECT_EQ(out.torn, 0) << "skew " << GetParam() << "us broke consistency";
  EXPECT_GT(out.committed, 0);
}

INSTANTIATE_TEST_SUITE_P(Skews, ClockSkewSweep,
                         ::testing::Values(0, 1000, 10000, 50000));

// ---------------------------------------------------------------------------
// Straggler partition: one partition gossips 10x slower; the stable time
// lags but nothing breaks.
// ---------------------------------------------------------------------------

TEST(Straggler, SlowGossiperDelaysButDoesNotBreak) {
  ClusterParams p = base();
  p.straggler_gossip_factor = 10;
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_EQ(out.torn, 0);
  EXPECT_EQ(out.completed, 80);
}

TEST(Straggler, LatencyDegradesGracefully) {
  // A straggling stabilizer stalls freshness, not throughput: both runs
  // complete the same workload.
  ClusterParams fast = base();
  ClusterParams slow = base();
  slow.straggler_gossip_factor = 20;
  fast.clients = 4;
  slow.clients = 4;
  fast.dags_per_client = 30;
  slow.dags_per_client = 30;
  fast.workload.num_keys = 1000;
  slow.workload.num_keys = 1000;
  Cluster a(std::move(fast));
  Cluster b(std::move(slow));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.committed, 120u);
  EXPECT_EQ(rb.committed, 120u);
}

// ---------------------------------------------------------------------------
// Aggressive GC: premature version collection may abort long transactions
// (paper §4.2) but never corrupts committed state.
// ---------------------------------------------------------------------------

TEST(AggressiveGc, AbortsPossibleConsistencyKept) {
  ClusterParams p = base();
  p.tcc.gc_window = milliseconds(5);
  p.tcc.gc_period = milliseconds(10);
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_EQ(out.torn, 0) << "GC must never expose torn state";
  // Checks succeed or abort; never lie.
  EXPECT_LE(out.committed, out.completed);
}

// ---------------------------------------------------------------------------
// Determinism holds for every system.
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<SystemKind> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns) {
  auto once = [&] {
    ClusterParams p = base();
    p.system = GetParam();
    p.clients = 4;
    p.dags_per_client = 20;
    p.workload.num_keys = 500;
    Cluster cluster(std::move(p));
    return cluster.run();
  };
  const RunResult a = once();
  const RunResult b = once();
  // The whole RunResult must be bit-identical, not merely "close": any
  // divergence means some component drew from an unforked random stream.
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.cache_entries, b.cache_entries);
  EXPECT_EQ(a.cache_bytes, b.cache_bytes);
  EXPECT_EQ(a.metrics.dag_latency_ms.raw(), b.metrics.dag_latency_ms.raw());
  EXPECT_EQ(a.metrics.metadata_bytes.raw(), b.metrics.metadata_bytes.raw());
}

INSTANTIATE_TEST_SUITE_P(Systems, DeterminismSweep,
                         ::testing::Values(SystemKind::kFaasTcc,
                                           SystemKind::kHydroCache,
                                           SystemKind::kCloudburst));

// ---------------------------------------------------------------------------
// Network faults: with 1% message loss (plus duplication and delay spikes)
// every client must still terminate — RPC timeouts and the DAG watchdog
// turn lost messages into retriable aborts, never into hung coroutines.
// ---------------------------------------------------------------------------

ClusterParams faulty(SystemKind system) {
  ClusterParams p = base();
  p.system = system;
  p.clients = 4;
  p.dags_per_client = 15;
  p.workload.num_keys = 500;
  p.faults.loss_prob = 0.01;
  p.faults.dup_prob = 0.005;
  p.faults.delay_spike_prob = 0.005;
  // A hung client would otherwise spin the loop for an hour of sim time.
  p.max_sim_time = seconds(60);
  return p;
}

class FaultSweep : public ::testing::TestWithParam<SystemKind> {};

TEST_P(FaultSweep, MessageLossNeverHangsClients) {
  Cluster cluster(faulty(GetParam()));
  const RunResult r = cluster.run();
  for (const auto& c : cluster.clients()) {
    EXPECT_TRUE(c->done()) << "client hung under message loss";
  }
  // Terminating via the max_sim_time escape hatch is a hang, not a pass.
  EXPECT_LT(r.duration_s, 30.0);
  EXPECT_GT(r.committed, 0u);
  // Losses actually happened (the fault layer is live, not a no-op) ...
  EXPECT_GT(r.metrics.net_messages_lost, 0u);
  // ... and aborts stayed bounded: retries absorb faults, they don't spiral.
  const double attempts =
      static_cast<double>(r.committed + r.aborted_attempts);
  EXPECT_LT(static_cast<double>(r.aborted_attempts) / attempts, 0.5);
}

TEST_P(FaultSweep, FaultRunsAreDeterministicPerSeed) {
  auto once = [&] {
    Cluster cluster(faulty(GetParam()));
    return cluster.run();
  };
  const RunResult a = once();
  const RunResult b = once();
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.metrics.net_messages_lost, b.metrics.net_messages_lost);
  EXPECT_EQ(a.metrics.net_messages_duplicated,
            b.metrics.net_messages_duplicated);
  EXPECT_EQ(a.metrics.net_rpc_timeouts, b.metrics.net_rpc_timeouts);
  EXPECT_EQ(a.metrics.net_rpc_retries, b.metrics.net_rpc_retries);
  EXPECT_EQ(a.metrics.dag_latency_ms.raw(), b.metrics.dag_latency_ms.raw());
}

INSTANTIATE_TEST_SUITE_P(Systems, FaultSweep,
                         ::testing::Values(SystemKind::kFaasTcc,
                                           SystemKind::kHydroCache,
                                           SystemKind::kCloudburst));

// ---------------------------------------------------------------------------
// Commit-retry correctness at a single partition: regressions for the
// lost-write ack and dedup-amnesia bugs, with the oracle cross-checking
// the pre-fix behavior via its chaos knob.
// ---------------------------------------------------------------------------

template <typename F>
void run_sim(sim::EventLoop& loop, F&& body) {
  bool done = false;
  sim::spawn([](F f, bool& flag) -> sim::Task<void> {
    co_await f();
    flag = true;
  }(std::forward<F>(body), done));
  const SimTime deadline = loop.now() + seconds(60);
  while (!done && loop.now() < deadline) {
    loop.run_until(loop.now() + milliseconds(2));
  }
  ASSERT_TRUE(done);
}

TEST(CommitRetry, ExpiredPrepareRefusesRetriedCommit) {
  // A commit retry arriving after the prepare lease expired must be
  // refused: the partition aborted the txn and installed nothing, so an
  // ok=true reply would report commit for writes that were dropped.
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkParams{}, Rng(7));
  net::RpcNode rpc(net, 50);
  storage::TccTopology topo;
  topo.partitions = {100};
  storage::TccPartitionParams params;
  params.gossip_period = milliseconds(5);
  params.prepare_ttl = milliseconds(20);
  storage::TccPartition part(net, 100, 0, topo.partitions, params);
  part.start();

  run_sim(loop, [&]() -> sim::Task<void> {
    storage::TccPrepareReq prep;
    prep.txn = 9;
    prep.dep_ts = Timestamp::min();
    prep.write_keys.push_back(1);
    auto presp = co_await rpc.call<storage::TccPrepareResp>(
        100, storage::kTccPrepare, prep);
    EXPECT_TRUE(presp.ok);
    // Outlive the prepare lease; the expiry sweep aborts the txn.
    co_await sim::sleep_for(loop, milliseconds(60));
    EXPECT_GT(part.counters().prepares_expired.value(), 0u);
    storage::TccCommitReq commit;
    commit.txn = 9;
    commit.commit_ts = presp.prepare_ts;
    commit.dep_ts = Timestamp::min();
    commit.writes.push_back(storage::KeyValue{1, "late"});
    Buffer raw =
        co_await rpc.call_raw(100, storage::kTccCommit, rpc.encode(commit));
    BufReader r(raw);
    const auto resp = storage::TccCommitResp::decode(r);
    EXPECT_FALSE(resp.ok) << "partition acked a commit it dropped";
    EXPECT_EQ(part.store().num_versions(), 0u);
  });
}

TEST(CommitRetry, OracleCatchesAckedExpiredCommit) {
  // Pre-fix behavior, reintroduced via the chaos knob: the partition acks
  // the retried commit of an expired prepare while installing nothing.  A
  // coordinator trusting that ack reports commit to the client — the
  // oracle must flag the acked write as lost.
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkParams{}, Rng(7));
  net::RpcNode rpc(net, 50);
  storage::TccTopology topo;
  topo.partitions = {100};
  storage::TccPartitionParams params;
  params.gossip_period = milliseconds(5);
  params.prepare_ttl = milliseconds(20);
  params.chaos_ack_expired_commit = true;
  check::ConsistencyOracle oracle;
  storage::TccPartition part(net, 100, 0, topo.partitions, params, nullptr,
                             &oracle);
  part.start();

  run_sim(loop, [&]() -> sim::Task<void> {
    storage::TccPrepareReq prep;
    prep.txn = 9;
    prep.dep_ts = Timestamp::min();
    prep.write_keys.push_back(1);
    auto presp = co_await rpc.call<storage::TccPrepareResp>(
        100, storage::kTccPrepare, prep);
    EXPECT_TRUE(presp.ok);
    co_await sim::sleep_for(loop, milliseconds(60));
    storage::TccCommitReq commit;
    commit.txn = 9;
    commit.commit_ts = presp.prepare_ts;
    commit.dep_ts = Timestamp::min();
    commit.writes.push_back(storage::KeyValue{1, "late"});
    oracle.on_commit_phase(9, {1});
    Buffer raw =
        co_await rpc.call_raw(100, storage::kTccCommit, rpc.encode(commit));
    BufReader r(raw);
    const auto resp = storage::TccCommitResp::decode(r);
    EXPECT_TRUE(resp.ok);  // the bug: acked without installing
    EXPECT_EQ(part.store().num_versions(), 0u);
    oracle.on_commit_ack(9, presp.prepare_ts, Timestamp::min());
  });
  const auto vs = oracle.check();
  bool lost = false;
  for (const auto& v : vs) {
    if (v.kind == check::Violation::Kind::kLostWrite) lost = true;
  }
  EXPECT_TRUE(lost) << "oracle missed the lost-write ack";
}

TEST(CommitRetry, DedupWindowEvictsFifoNotWholesale) {
  // resolved_cap = 2: three fast-path commits overflow the window by one.
  // A replayed commit of the *recent* txn 2 must be answered from the
  // window with its original timestamp — not re-executed.  The historic
  // wholesale clear() at the cap forgot every resolution, so a replay of
  // a just-committed fast-path txn minted a second version at a fresh
  // timestamp.
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkParams{}, Rng(7));
  net::RpcNode rpc(net, 50);
  storage::TccTopology topo;
  topo.partitions = {100};
  storage::TccPartitionParams params;
  params.resolved_cap = 2;
  storage::TccPartition part(net, 100, 0, topo.partitions, params);
  storage::TccStorageClient client(rpc, topo);
  part.start();

  run_sim(loop, [&]() -> sim::Task<void> {
    auto commit_one = [&](TxnId txn,
                          const char* v) -> sim::Task<Timestamp> {
      std::vector<storage::KeyValue> writes;
      writes.push_back(storage::KeyValue{1, v});
      co_return *co_await client.commit(txn, std::move(writes),
                                        Timestamp::min());
    };
    co_await commit_one(1, "a");
    const Timestamp t2 = co_await commit_one(2, "b");
    co_await commit_one(3, "c");
    const size_t versions = part.store().num_versions();
    const uint64_t dups = part.counters().duplicate_commits.value();

    storage::TccCommitReq replay;
    replay.txn = 2;
    replay.commit_ts = Timestamp::min();  // fast-path retry, ts unassigned
    replay.dep_ts = Timestamp::min();
    replay.writes.push_back(storage::KeyValue{1, "b"});
    Buffer raw =
        co_await rpc.call_raw(100, storage::kTccCommit, rpc.encode(replay));
    BufReader r(raw);
    const auto resp = storage::TccCommitResp::decode(r);
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(Timestamp(r.get_u64()), t2) << "replay re-assigned a timestamp";
    EXPECT_EQ(part.store().num_versions(), versions)
        << "replayed commit minted a second version";
    EXPECT_EQ(part.counters().duplicate_commits.value(), dups + 1);
  });
}

}  // namespace
}  // namespace faastcc::harness
