file(REMOVE_RECURSE
  "CMakeFiles/faastcc_client.dir/client/eventual_client.cc.o"
  "CMakeFiles/faastcc_client.dir/client/eventual_client.cc.o.d"
  "CMakeFiles/faastcc_client.dir/client/faastcc_client.cc.o"
  "CMakeFiles/faastcc_client.dir/client/faastcc_client.cc.o.d"
  "CMakeFiles/faastcc_client.dir/client/hydro_client.cc.o"
  "CMakeFiles/faastcc_client.dir/client/hydro_client.cc.o.d"
  "libfaastcc_client.a"
  "libfaastcc_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
