// Figure 10: median per-function latency as the DAG length grows
// ({3, 6, 9, 12, 15} functions), for static (a) and dynamic (b)
// transactions.  HydroCache's per-function time grows sharply with DAG
// length for dynamic transactions (metadata accumulates along the chain);
// FaaSTCC is nearly flat.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 10", "median per-function latency vs DAG size (ms)");
  std::printf(
      "paper: no numeric labels; HydroCache-Dynamic grows ~5x from short "
      "to long DAGs at zipf 1.0,\nHydroCache-Static grows mildly "
      "(cache misses), FaaSTCC stays nearly flat.\n");

  const int sizes[] = {3, 6, 9, 12, 15};
  const double zipfs[] = {1.0, 1.25, 1.5};
  // DAG-size sweeps multiply run count; use a lighter default per run.
  const int dags = harness::bench_dags_per_client(400);

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
  };
  const Row rows[] = {
      {"HydroCache-Static", SystemKind::kHydroCache, true},
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false},
      {"FaaSTCC", SystemKind::kFaasTcc, false},
  };

  for (double z : zipfs) {
    std::printf("\nzipf = %.2f\n", z);
    Table table({"system", "dag=3", "dag=6", "dag=9", "dag=12", "dag=15",
                 "growth 3->15"});
    for (const Row& row : rows) {
      std::vector<std::string> cells{row.name};
      double first = 0, last = 0;
      for (int size : sizes) {
        ExperimentConfig cfg = base_config(row.system, z, row.static_txns);
        cfg.dag_size = size;
        const SummaryStats s = run_or_load(cfg, dags);
        const double per_fn = s.latency_med_ms / size;
        if (size == 3) first = per_fn;
        last = per_fn;
        cells.push_back(fmt(per_fn, 2));
      }
      cells.push_back(fmt(last / first, 1) + "x");
      table.add_row(std::move(cells));
    }
    table.print();
  }
  return 0;
}
