file(REMOVE_RECURSE
  "libfaastcc_client.a"
)
