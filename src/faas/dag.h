// DAG model for function compositions (paper §3.1).
//
// A composition has one root, one sink, and arbitrary fan-out/fan-in in
// between; the whole composition executes as one transaction.  Functions
// are referenced by name in a registry and receive opaque argument bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"

namespace faastcc::faas {

struct FunctionSpec {
  std::string name;                // registry key
  Buffer args;                     // opaque, interpreted by the body
  std::vector<uint32_t> children;  // indices into DagSpec::functions

  template <typename W>
  void encode(W& w) const {
    w.put_bytes(name);
    w.put_bytes(std::string_view(reinterpret_cast<const char*>(args.data()),
                                 args.size()));
    w.put_u32(static_cast<uint32_t>(children.size()));
    for (uint32_t c : children) w.put_u32(c);
  }
  static FunctionSpec decode(BufReader& r);
};

struct DagSpec {
  std::vector<FunctionSpec> functions;
  bool is_static = false;
  // Declared key sets, meaningful for static transactions only.
  std::vector<Key> declared_read_set;
  std::vector<Key> declared_write_set;

  // Index of the unique root (no parents).  Asserts validity.
  uint32_t root() const;
  // Number of parents of each function.
  std::vector<uint32_t> in_degrees() const;
  // True iff there is exactly one root, exactly one sink, all child
  // indices are in range and the graph is acyclic.
  bool valid() const;

  // Convenience builder: a chain f0 -> f1 -> ... -> f{n-1}.
  static DagSpec chain(std::vector<FunctionSpec> functions);

  // Graphs with several sinks are automatically extended with a no-op
  // sync function that aggregates them (paper §3.1), so the composition
  // has the single commit point the runtime requires.  Returns true if
  // the spec was modified.  The sync body is registered as
  // FunctionRegistry::kSyncFunction by every registry.
  bool normalize_sinks();

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(functions.size()));
    for (const auto& f : functions) f.encode(w);
    w.put_bool(is_static);
    w.put_u32(static_cast<uint32_t>(declared_read_set.size()));
    for (Key k : declared_read_set) w.put_u64(k);
    w.put_u32(static_cast<uint32_t>(declared_write_set.size()));
    for (Key k : declared_write_set) w.put_u64(k);
  }
  static DagSpec decode(BufReader& r);
};

}  // namespace faastcc::faas
