// Figure 8: cache memory consumption at the end of a run, normalized to
// HydroCache.  HydroCache stores dependency metadata and stubs for the
// "dependencies of the dependencies"; FaaSTCC stores only accessed keys
// with two timestamps each.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 8", "cache consumption, normalized to HydroCache");
  std::printf(
      "paper: bars are not numerically labeled; FaaSTCC sits well below "
      "HydroCache,\nwith the gap largest at moderate skew (zipf 1.0).\n");

  const double zipfs[] = {1.0, 1.25, 1.5};
  Table table({"zipf", "HydroCache MiB", "FaaSTCC MiB",
               "FaaSTCC normalized", "HC keys", "FaaSTCC keys"});
  for (double z : zipfs) {
    const SummaryStats hc =
        run_or_load(base_config(SystemKind::kHydroCache, z, false));
    const SummaryStats ft =
        run_or_load(base_config(SystemKind::kFaasTcc, z, false));
    table.add_row({fmt(z, 2), fmt(hc.cache_bytes / 1048576.0, 1),
                   fmt(ft.cache_bytes / 1048576.0, 1),
                   fmt(ft.cache_bytes / hc.cache_bytes, 2),
                   fmt(hc.cache_entries, 0), fmt(ft.cache_entries, 0)});
  }
  table.print();
  return 0;
}
