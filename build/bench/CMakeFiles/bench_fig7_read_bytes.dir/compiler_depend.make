# Empty compiler generated dependencies file for bench_fig7_read_bytes.
# This may be replaced when dependencies are built.
