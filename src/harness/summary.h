// Aggregated per-run statistics and a small on-disk results cache.
//
// Several figures of the paper derive from the same experiment sweep; the
// bench binaries share results through this cache (directory set by
// FAASTCC_CACHE_DIR, default ".faastcc_bench_cache") so running all of
// them does not repeat identical cluster runs.  Delete the directory to
// force fresh measurements.
#pragma once

#include <optional>
#include <string>

#include "harness/cluster.h"
#include "harness/experiment.h"

namespace faastcc::harness {

struct SummaryStats {
  double latency_med_ms = 0;
  double latency_p99_ms = 0;
  double throughput = 0;
  double metadata_med = 0;
  double metadata_p99 = 0;
  double rounds_med = 0;
  double rounds_p99 = 0;
  double read_bytes_med = 0;
  double read_bytes_p99 = 0;
  double cache_bytes = 0;
  double cache_entries = 0;
  double abort_rate = 0;
  double hit_rate = 0;
  double committed = 0;
  double duration_s = 0;
  // Median per-DAG latency breakdown (ms); all zero unless tracing was
  // enabled for the run (the breakdown histograms are trace-derived).
  double breakdown_queue_ms = 0;
  double breakdown_compute_ms = 0;
  double breakdown_storage_ms = 0;
  double breakdown_network_ms = 0;
  // Stabilization: how far the global stable time trails real time at each
  // gossip round (µs), and observations dropped for membership staleness.
  // Zero for systems without a stabilizer (hydro, ev).
  double stab_lag_med_us = 0;
  double stab_lag_p99_us = 0;
  // Aggregate drop count plus the per-reason split (Stabilizer::DropReason);
  // the aggregate always equals the sum of the four.
  double stab_stale_drops = 0;
  double stab_drops_unknown_member = 0;
  double stab_drops_stale_report = 0;
  double stab_drops_foreign_child = 0;
  double stab_drops_stale_broadcast = 0;
  // Routing-plane gauges at end of run: partition count and table epoch.
  // Zero for runs without a reconfiguration engine (the table never moved).
  double routing_active_partitions = 0;
  double routing_epoch = 0;
};

SummaryStats summarize(const RunResult& result);

// Stable cache key for an experiment configuration.
std::string config_key(const ExperimentConfig& cfg, int dags_per_client);

std::optional<SummaryStats> load_cached(const std::string& key);
void store_cached(const std::string& key, const SummaryStats& stats);

// Runs the experiment, or returns the cached summary for identical
// parameters.  `dags_per_client` of 0 uses the bench default.
SummaryStats run_or_load(ExperimentConfig cfg, int dags_per_client = 0);

}  // namespace faastcc::harness
