#!/usr/bin/env python3
"""Gate-semantics test for bench_diff.py --max-cell-messages.

Regression: the ceiling label used to substring-match cell labels, so an
ambiguous label silently gated whichever cells happened to contain it.
Matching is now exact-or-error; this test pins that down against the
committed BENCH_gossip.json artifact.

Usage: bench_diff_test.py path/to/bench_diff.py path/to/BENCH_gossip.json
"""

import subprocess
import sys

BENCH_DIFF, ARTIFACT = sys.argv[1], sys.argv[2]

EXACT = "-/tree4@20ms/p512/z1.40"


def run(*extra):
    return subprocess.run(
        [sys.executable, BENCH_DIFF, "--check", ARTIFACT, *extra],
        capture_output=True,
        text=True,
    )


def expect(cond, r, what):
    if not cond:
        print(f"FAIL: {what}\nstdout:\n{r.stdout}\nstderr:\n{r.stderr}")
        sys.exit(1)


# Exact label with the committed ceiling: passes.
r = run("--max-cell-messages", f"{EXACT}=800000")
expect(r.returncode == 0, r, "exact label under ceiling should pass")

# Exact label with a ceiling below the measured traffic: fails.
r = run("--max-cell-messages", f"{EXACT}=1000")
expect(r.returncode != 0, r, "exact label over ceiling should fail")
expect("messages/run > ceiling" in r.stderr, r, "failure names the overage")

# The pre-fix substring form is rejected and the error lists the cells
# actually present, so a misconfigured gate is loud, not silently wrong.
r = run("--max-cell-messages", "tree4@20ms/p512=800000")
expect(r.returncode != 0, r, "substring label should be rejected")
expect("matches no cell exactly" in r.stderr, r, "error says exact-match")
expect(EXACT in r.stderr, r, "error lists candidate cell labels")

print("bench_diff_test: ok")
