#include "harness/summary.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace faastcc::harness {
namespace {

std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("FAASTCC_CACHE_DIR"); env != nullptr) {
    return env;
  }
  return ".faastcc_bench_cache";
}

}  // namespace

SummaryStats summarize(const RunResult& r) {
  SummaryStats s;
  s.latency_med_ms = r.metrics.dag_latency_ms.median();
  s.latency_p99_ms = r.metrics.dag_latency_ms.p99();
  s.throughput = r.throughput;
  s.metadata_med = r.metrics.metadata_bytes.median();
  s.metadata_p99 = r.metrics.metadata_bytes.p99();
  s.rounds_med = r.metrics.storage_rounds.median();
  s.rounds_p99 = r.metrics.storage_rounds.p99();
  s.read_bytes_med = r.metrics.storage_read_bytes.median();
  s.read_bytes_p99 = r.metrics.storage_read_bytes.p99();
  s.cache_bytes = static_cast<double>(r.cache_bytes);
  s.cache_entries = static_cast<double>(r.cache_entries);
  s.abort_rate = r.metrics.abort_rate();
  s.hit_rate = r.metrics.cache_hit_rate();
  s.committed = static_cast<double>(r.committed);
  s.duration_s = r.duration_s;
  const auto median_of = [&](std::string_view name) {
    const Samples* h = r.metrics.find_histogram(name);
    return h != nullptr ? h->median() : 0.0;
  };
  s.breakdown_queue_ms = median_of("breakdown.queue_ms");
  s.breakdown_compute_ms = median_of("breakdown.compute_ms");
  s.breakdown_storage_ms = median_of("breakdown.storage_ms");
  s.breakdown_network_ms = median_of("breakdown.network_ms");
  if (const Samples* lag = r.metrics.find_histogram("stab.stable_lag_us");
      lag != nullptr && !lag->empty()) {
    s.stab_lag_med_us = lag->median();
    s.stab_lag_p99_us = lag->p99();
  }
  const auto counter_of = [&](const char* name) -> double {
    const Counter* c = r.metrics.find_counter(name);
    return c != nullptr ? static_cast<double>(c->value()) : 0;
  };
  s.stab_stale_drops = counter_of("stab.stale_drops");
  s.stab_drops_unknown_member = counter_of("stab.drops.unknown_member");
  s.stab_drops_stale_report = counter_of("stab.drops.stale_report");
  s.stab_drops_foreign_child = counter_of("stab.drops.foreign_child");
  s.stab_drops_stale_broadcast = counter_of("stab.drops.stale_broadcast");
  s.routing_active_partitions = counter_of("routing.active_partitions");
  s.routing_epoch = counter_of("routing.epoch");
  return s;
}

std::string config_key(const ExperimentConfig& cfg, int dags_per_client) {
  std::ostringstream os;
  os << "sys" << static_cast<int>(cfg.system) << "_z" << cfg.zipf << "_st"
     << cfg.static_txns << "_d" << cfg.dag_size << "_cap"
     << (cfg.cache_capacity == SIZE_MAX ? std::string("inf")
                                        : std::to_string(cfg.cache_capacity))
     << "_p" << cfg.faastcc.use_promises << cfg.faastcc.use_interval << "_s"
     << cfg.seed << "_n"
     << (dags_per_client > 0 ? dags_per_client : bench_dags_per_client());
  return os.str();
}

namespace {

const char* kFields[] = {
    "latency_med_ms",       "latency_p99_ms",
    "throughput",           "metadata_med",
    "metadata_p99",         "rounds_med",
    "rounds_p99",           "read_bytes_med",
    "read_bytes_p99",       "cache_bytes",
    "cache_entries",        "abort_rate",
    "hit_rate",             "committed",
    "duration_s",           "breakdown_queue_ms",
    "breakdown_compute_ms", "breakdown_storage_ms",
    "breakdown_network_ms",      "stab_lag_med_us",
    "stab_lag_p99_us",           "stab_stale_drops",
    "stab_drops_unknown_member", "stab_drops_stale_report",
    "stab_drops_foreign_child",  "stab_drops_stale_broadcast",
    "routing_active_partitions", "routing_epoch",
};

double* field_ptr(SummaryStats& s, size_t i) {
  double* ptrs[] = {
      &s.latency_med_ms,       &s.latency_p99_ms,
      &s.throughput,           &s.metadata_med,
      &s.metadata_p99,         &s.rounds_med,
      &s.rounds_p99,           &s.read_bytes_med,
      &s.read_bytes_p99,       &s.cache_bytes,
      &s.cache_entries,        &s.abort_rate,
      &s.hit_rate,             &s.committed,
      &s.duration_s,           &s.breakdown_queue_ms,
      &s.breakdown_compute_ms, &s.breakdown_storage_ms,
      &s.breakdown_network_ms,      &s.stab_lag_med_us,
      &s.stab_lag_p99_us,           &s.stab_stale_drops,
      &s.stab_drops_unknown_member, &s.stab_drops_stale_report,
      &s.stab_drops_foreign_child,  &s.stab_drops_stale_broadcast,
      &s.routing_active_partitions, &s.routing_epoch,
  };
  return ptrs[i];
}

constexpr size_t kNumFields = sizeof(kFields) / sizeof(kFields[0]);

}  // namespace

std::optional<SummaryStats> load_cached(const std::string& key) {
  std::ifstream in(cache_dir() / (key + ".txt"));
  if (!in) return std::nullopt;
  SummaryStats s;
  std::string name;
  double value;
  size_t loaded = 0;
  while (in >> name >> value) {
    for (size_t i = 0; i < kNumFields; ++i) {
      if (name == kFields[i]) {
        *field_ptr(s, i) = value;
        ++loaded;
      }
    }
  }
  if (loaded != kNumFields) return std::nullopt;
  return s;
}

void store_cached(const std::string& key, const SummaryStats& stats) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  std::ofstream out(cache_dir() / (key + ".txt"));
  SummaryStats copy = stats;
  for (size_t i = 0; i < kNumFields; ++i) {
    out << kFields[i] << " " << *field_ptr(copy, i) << "\n";
  }
}

SummaryStats run_or_load(ExperimentConfig cfg, int dags_per_client) {
  if (dags_per_client > 0) cfg.dags_per_client = dags_per_client;
  const std::string key = config_key(cfg, cfg.dags_per_client);
  if (auto cached = load_cached(key)) {
    std::fprintf(stderr, "[bench] cached: %s\n", key.c_str());
    return *cached;
  }
  std::fprintf(stderr, "[bench] running: %s ...\n", key.c_str());
  const RunResult result = run_experiment(cfg);
  const SummaryStats stats = summarize(result);
  store_cached(key, stats);
  return stats;
}

}  // namespace faastcc::harness
