file(REMOVE_RECURSE
  "libfaastcc_common.a"
)
