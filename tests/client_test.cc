// Unit tests for the client libraries: snapshot-interval algebra (Eq. 1-3),
// FaaSTCC context/session handling, HydroCache context handling, and the
// eventual baseline.
#include <gtest/gtest.h>

#include "client/eventual_client.h"
#include "client/faastcc_client.h"
#include "client/hydro_client.h"
#include "client/snapshot_interval.h"
#include "common/rng.h"

namespace faastcc::client {
namespace {

Timestamp ts(uint64_t us) { return Timestamp(us, 0, 0); }

// ---------------------------------------------------------------------------
// SnapshotInterval — the paper's Eq. 1/2/3 and the §4.5 case analysis.
// ---------------------------------------------------------------------------

TEST(SnapshotInterval, FullAdmitsEverything) {
  const auto si = SnapshotInterval::full();
  EXPECT_TRUE(si.admits(ts(1), ts(1)));
  EXPECT_TRUE(si.admits(Timestamp::max().prev(), Timestamp::max()));
  EXPECT_FALSE(si.empty());
}

TEST(SnapshotInterval, Section45Case1_StalePromiseRejected) {
  // Interval [80, 120]; cached <k', 50, 60>: promise 60 < 80 -> must
  // refresh from storage.
  SnapshotInterval si{ts(80), ts(120)};
  EXPECT_FALSE(si.admits(ts(50), ts(60)));
}

TEST(SnapshotInterval, Section45Case2_PromiseCoversLow) {
  // Cached <k', 50, 90>: consistent with [80, 120].
  SnapshotInterval si{ts(80), ts(120)};
  EXPECT_TRUE(si.admits(ts(50), ts(90)));
  si.narrow(ts(50), ts(90));
  EXPECT_EQ(si.low, ts(80));
  EXPECT_EQ(si.high, ts(90));
}

TEST(SnapshotInterval, Section45Case3_NewerVersionWithinPromise) {
  // Cached <k', 90, 130>: consistent with [80, 120].
  SnapshotInterval si{ts(80), ts(120)};
  EXPECT_TRUE(si.admits(ts(90), ts(130)));
  si.narrow(ts(90), ts(130));
  EXPECT_EQ(si.low, ts(90));
  EXPECT_EQ(si.high, ts(120));
}

TEST(SnapshotInterval, Section45Case4_TooNewRejected) {
  // Cached <k', 130, 140>: version beyond the promise horizon of k.
  SnapshotInterval si{ts(80), ts(120)};
  EXPECT_FALSE(si.admits(ts(130), ts(140)));
}

TEST(SnapshotInterval, NarrowingIsMonotone) {
  SnapshotInterval si = SnapshotInterval::full();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const SnapshotInterval before = si;
    const Timestamp v(rng.next_below(1000) + 1, 0, 0);
    const Timestamp p(v.physical_us() + rng.next_below(1000), 1, 0);
    if (!si.admits(v, p)) continue;
    si.narrow(v, p);
    EXPECT_GE(si.low, before.low);
    EXPECT_LE(si.high, before.high);
    EXPECT_FALSE(si.empty());
  }
}

TEST(SnapshotInterval, MergeIsIntersection) {
  const SnapshotInterval a{ts(10), ts(100)};
  const SnapshotInterval b{ts(50), ts(200)};
  std::vector<SnapshotInterval> parents{a, b};
  const auto m = SnapshotInterval::merge(parents);
  EXPECT_EQ(m.low, ts(50));
  EXPECT_EQ(m.high, ts(100));
}

TEST(SnapshotInterval, MergeDisjointIsEmpty) {
  const SnapshotInterval a{ts(10), ts(20)};
  const SnapshotInterval b{ts(30), ts(40)};
  std::vector<SnapshotInterval> parents{a, b};
  EXPECT_TRUE(SnapshotInterval::merge(parents).empty());
}

TEST(SnapshotInterval, MergeSingleIsIdentity) {
  const SnapshotInterval a{ts(10), ts(20)};
  std::vector<SnapshotInterval> parents{a};
  EXPECT_EQ(SnapshotInterval::merge(parents), a);
}

TEST(SnapshotInterval, EncodesToSixteenBytes) {
  // The paper's headline metadata claim (Fig. 5): two timestamps.
  const SnapshotInterval si{ts(1), ts(2)};
  EXPECT_EQ(encoded_size(si), 16u);
}

TEST(SnapshotInterval, RoundTripsThroughCodec) {
  const SnapshotInterval si{ts(123), ts(456)};
  const Buffer b = encode_message(si);
  EXPECT_EQ(decode_message<SnapshotInterval>(b), si);
}

TEST(SnapshotInterval, FixedIntervalAdmitsOnlyCoveringVersions) {
  const auto si = SnapshotInterval::fixed(ts(100));
  EXPECT_TRUE(si.admits(ts(100), ts(100)));
  EXPECT_TRUE(si.admits(ts(50), ts(150)));
  EXPECT_FALSE(si.admits(ts(101), ts(200)));  // version too new
  EXPECT_FALSE(si.admits(ts(50), ts(99)));    // promise too old
}

// ---------------------------------------------------------------------------
// FaaSTCC context & merge (Alg. 1 lines 2-12).
// ---------------------------------------------------------------------------

TEST(FaasTccContext, RoundTripsThroughCodec) {
  FaasTccContext c;
  c.interval = SnapshotInterval{ts(5), ts(10)};
  c.dep_ts = ts(3);
  c.snapshot_fixed = true;
  c.write_set[7] = "seven";
  c.write_set[9] = "nine";
  const auto d = decode_message<FaasTccContext>(encode_message(c));
  EXPECT_EQ(d.interval, c.interval);
  EXPECT_EQ(d.dep_ts, c.dep_ts);
  EXPECT_TRUE(d.snapshot_fixed);
  EXPECT_EQ(d.write_set.at(7), "seven");
  EXPECT_EQ(d.write_set.size(), 2u);
}

TEST(FaasTccContext, RejectsUnknownWireVersion) {
  FaasTccContext c;
  c.write_set[7] = "seven";
  Buffer b = encode_message(c);
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b[0], FaasTccContext::kWireVersion);
  b[0] = FaasTccContext::kWireVersion + 1;
  EXPECT_THROW(decode_message<FaasTccContext>(b), CodecError);
}

TEST(HydroContext, RejectsUnknownWireVersion) {
  HydroContext c;
  c.write_set[7] = "seven";
  Buffer b = encode_message(c);
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b[0], HydroContext::kWireVersion);
  b[0] = HydroContext::kWireVersion + 1;
  EXPECT_THROW(decode_message<HydroContext>(b), CodecError);
}

TEST(FaasTccSession, EmptyDecodesToMin) {
  EXPECT_EQ(decode_faastcc_session(Buffer{}), Timestamp::min());
}

TEST(FaasTccSession, RoundTrips) {
  const Buffer b = encode_faastcc_session(ts(77));
  EXPECT_EQ(decode_faastcc_session(b), ts(77));
}

// The adapter needs live network plumbing only for reads/commits; open()
// and merge logic are testable with a dummy RPC endpoint.
class FaasTccOpenTest : public ::testing::Test {
 protected:
  FaasTccOpenTest()
      : net_(loop_, net::NetworkParams{}, Rng(1)),
        rpc_(net_, 1),
        adapter_(rpc_, 2, storage::TccTopology{{100}}, FaasTccConfig{},
                 nullptr) {}

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode rpc_;
  FaasTccAdapter adapter_;
  TxnInfo info_;
};

TEST_F(FaasTccOpenTest, RootStartsWithFullInterval) {
  auto txn = adapter_.open(info_, {}, Buffer{});
  ASSERT_NE(txn, nullptr);
  auto* t = static_cast<FaasTccTxn*>(txn.get());
  EXPECT_EQ(t->interval(), SnapshotInterval::full());
}

TEST_F(FaasTccOpenTest, RootTakesSessionDependency) {
  auto txn = adapter_.open(info_, {}, encode_faastcc_session(ts(55)));
  ASSERT_NE(txn, nullptr);
  // Session dep surfaces in the exported context.
  const auto ctx =
      decode_message<FaasTccContext>(txn->export_context());
  EXPECT_EQ(ctx.dep_ts, ts(55));
}

TEST_F(FaasTccOpenTest, MergeIntersectsParentIntervals) {
  FaasTccContext a;
  a.interval = SnapshotInterval{ts(10), ts(100)};
  FaasTccContext b;
  b.interval = SnapshotInterval{ts(40), ts(80)};
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  ASSERT_NE(txn, nullptr);
  auto* t = static_cast<FaasTccTxn*>(txn.get());
  EXPECT_EQ(t->interval(), (SnapshotInterval{ts(40), ts(80)}));
}

TEST_F(FaasTccOpenTest, IncompatibleParentsAbort) {
  FaasTccContext a;
  a.interval = SnapshotInterval{ts(10), ts(20)};
  FaasTccContext b;
  b.interval = SnapshotInterval{ts(30), ts(40)};
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  EXPECT_EQ(txn, nullptr);
}

TEST_F(FaasTccOpenTest, MergeUnionsWriteSets) {
  FaasTccContext a;
  a.write_set[1] = "one";
  FaasTccContext b;
  b.write_set[2] = "two";
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  ASSERT_NE(txn, nullptr);
  const auto ctx = decode_message<FaasTccContext>(txn->export_context());
  EXPECT_EQ(ctx.write_set.size(), 2u);
}

TEST_F(FaasTccOpenTest, MetadataIsSixteenBytes) {
  auto txn = adapter_.open(info_, {}, Buffer{});
  EXPECT_EQ(txn->metadata_bytes(), 16u);
}

TEST_F(FaasTccOpenTest, WritesReadBackWithinTxn) {
  auto txn = adapter_.open(info_, {}, Buffer{});
  txn->write(5, "mine");
  bool done = false;
  sim::spawn([](FunctionTxn& t, bool& flag) -> sim::Task<void> {
    auto vals = co_await t.read(std::vector<Key>(1, Key{5}));
    EXPECT_TRUE(vals.has_value());
    EXPECT_EQ((*vals)[0], "mine");  // served from the write set, no RPC
    flag = true;
  }(*txn, done));
  loop_.run();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// Hydro context / session.
// ---------------------------------------------------------------------------

class HydroOpenTest : public ::testing::Test {
 protected:
  HydroOpenTest()
      : net_(loop_, net::NetworkParams{}, Rng(1)),
        rpc_(net_, 1),
        adapter_(rpc_, 2, storage::EvTopology{{{100}}}, Rng(3), HydroConfig{},
                 nullptr) {}

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode rpc_;
  HydroAdapter adapter_;
  TxnInfo info_;
};

TEST_F(HydroOpenTest, RootInheritsSessionCausalPast) {
  HydroSession s;
  s.lamport = 42;
  s.deps.require(7, 9, 100, 2);
  auto txn = adapter_.open(info_, {}, encode_message(s));
  ASSERT_NE(txn, nullptr);
  const auto ctx = decode_message<HydroContext>(txn->export_context());
  EXPECT_EQ(ctx.lamport, 42u);
  ASSERT_NE(ctx.deps.find(7), nullptr);
  EXPECT_EQ(ctx.deps.find(7)->counter, 9u);
}

TEST_F(HydroOpenTest, ParentsMergeDependencies) {
  HydroContext a;
  a.deps.mark_read(1, 5, 100);
  a.lamport = 10;
  HydroContext b;
  b.deps.require(2, 7, 100, 1);
  b.lamport = 20;
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  ASSERT_NE(txn, nullptr);
  const auto ctx = decode_message<HydroContext>(txn->export_context());
  EXPECT_EQ(ctx.lamport, 20u);
  EXPECT_NE(ctx.deps.find(1), nullptr);
  EXPECT_NE(ctx.deps.find(2), nullptr);
}

TEST_F(HydroOpenTest, ConflictingParentReadsAbort) {
  HydroContext a;
  a.deps.mark_read(1, 5, 100);
  HydroContext b;
  b.deps.mark_read(1, 7, 120);  // same key, different version read
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  EXPECT_EQ(txn, nullptr);
}

TEST_F(HydroOpenTest, AgreeingParentReadsMerge) {
  HydroContext a;
  a.deps.mark_read(1, 5, 100);
  HydroContext b;
  b.deps.mark_read(1, 5, 100);
  auto txn = adapter_.open(
      info_, {encode_message(a), encode_message(b)}, Buffer{});
  EXPECT_NE(txn, nullptr);
}

TEST_F(HydroOpenTest, StaticRestrictionPrunesMetadata) {
  info_.is_static = true;
  info_.declared_read_set = {1, 2};
  info_.declared_write_set = {3};
  HydroContext parent;
  for (Key k = 0; k < 100; ++k) parent.deps.require(k, 1, 100, 1);
  auto txn = adapter_.open(info_, {encode_message(parent)}, Buffer{});
  ASSERT_NE(txn, nullptr);
  // Only keys 1, 2, 3 remain relevant.
  EXPECT_LE(txn->metadata_bytes(), 4 + 3 * cache::kDepWireBytes);
}

TEST_F(HydroOpenTest, DynamicShipsFullMetadata) {
  HydroContext parent;
  for (Key k = 0; k < 100; ++k) {
    parent.deps.require(k, 1, milliseconds(1000), 1);
  }
  auto txn = adapter_.open(info_, {encode_message(parent)}, Buffer{});
  ASSERT_NE(txn, nullptr);
  EXPECT_GE(txn->metadata_bytes(), 100 * cache::kDepWireBytes);
}

TEST(HydroSessionCodec, RoundTrips) {
  HydroSession s;
  s.lamport = 5;
  s.global_cut = 123;
  s.deps.require(1, 2, 3, 1);
  const auto d = decode_message<HydroSession>(encode_message(s));
  EXPECT_EQ(d.lamport, 5u);
  EXPECT_EQ(d.global_cut, 123);
  EXPECT_EQ(d.deps.size(), 1u);
}

// ---------------------------------------------------------------------------
// Eventual baseline.
// ---------------------------------------------------------------------------

TEST(EventualClient, ContextCarriesOnlyWrites) {
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkParams{}, Rng(1));
  net::RpcNode rpc(net, 1);
  EventualAdapter adapter(rpc, 2, storage::EvTopology{{{100}}}, Rng(3),
                          nullptr);
  TxnInfo info;
  auto txn = adapter.open(info, {}, Buffer{});
  txn->write(9, "w");
  EXPECT_EQ(txn->metadata_bytes(), 0u);
  const auto ctx = decode_message<EventualContext>(txn->export_context());
  EXPECT_EQ(ctx.write_set.at(9), "w");

  // A child inherits the parent's writes (read-your-writes downstream).
  auto child = adapter.open(info, {txn->export_context()}, Buffer{});
  bool done = false;
  sim::spawn([](FunctionTxn& t, bool& flag) -> sim::Task<void> {
    auto vals = co_await t.read(std::vector<Key>(1, Key{9}));
    EXPECT_EQ((*vals)[0], "w");
    flag = true;
  }(*child, done));
  loop.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace faastcc::client
