#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faastcc {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("FAASTCC_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

LogLevel g_level = initial_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }
bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

void log_write(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace faastcc
