// The function scheduler: receives DAG execution requests from clients,
// places every function on a compute node, and fires the root trigger.
// The paper's design is agnostic to the placement heuristic (§3.2); we
// provide uniform-random and round-robin placement.
#pragma once

#include <deque>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "faas/messages.h"
#include "net/rpc.h"
#include "obs/trace.h"

namespace faastcc::faas {

struct SchedulerParams {
  Duration service_time = microseconds(150);
  bool round_robin = false;  // default: uniform random placement
  // Capacity of the dispatched-txn dedup window (FIFO eviction).  Clients
  // use a fresh transaction id per DAG attempt, so a repeated id is always
  // a fabric-duplicated kStartDag; dispatching it again would place a
  // ghost copy of the DAG on independently chosen nodes, where the
  // per-node trigger dedup cannot see it.
  size_t start_dedup_cap = 1 << 16;
};

class Scheduler {
 public:
  Scheduler(net::Network& network, net::Address self,
            std::vector<net::Address> nodes, SchedulerParams params, Rng rng,
            obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }
  uint64_t dags_started() const { return dags_started_.value(); }
  uint64_t dup_starts_dropped() const { return dup_starts_dropped_.value(); }

 private:
  void on_start(Buffer msg, net::Address from);
  sim::Task<void> dispatch(StartDagMsg start, obs::TraceContext trace);

  net::RpcNode rpc_;
  std::vector<net::Address> nodes_;
  SchedulerParams params_;
  Rng rng_;
  obs::Tracer* tracer_;
  size_t next_node_ = 0;
  Counter dags_started_;
  Counter dup_starts_dropped_;
  // At-most-once dispatch per transaction id (FIFO window, same idiom as
  // the compute nodes' executed-(txn, fn) window).
  std::unordered_set<TxnId> started_;
  std::deque<TxnId> started_order_;
};

}  // namespace faastcc::faas
